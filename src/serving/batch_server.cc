#include "serving/batch_server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <string>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace crossmodal {

namespace {

/// One queued request. The row is copied at submit time so the caller's
/// buffer may die before the batch flushes.
struct Request {
  EntityId entity = 0;
  FeatureVector row;
  std::promise<Result<ServedScore>> promise;
};

bool Retryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded;
}

}  // namespace

/// One shard: a bounded queue drained by a single worker thread that
/// micro-batches into its own ModelServer. Scoring and fault probing happen
/// outside mu_; the lock covers only queue and counter state.
class ServingShard {
 public:
  ServingShard(size_t index, ModelServer server,
               const ShardedServingOptions& options,
               const ServingFaultHook* hook)
      : index_(index),
        options_(options),
        hook_(hook),
        server_(std::move(server)) {
    {
      MutexLock lock(&mu_);
      paused_ = options_.start_paused;
      batch_size_hist_.assign(options_.max_batch, 0);
    }
    // Started last so the worker never sees a half-built shard.
    worker_ = std::thread([this] { WorkerLoop(); });
  }

  ServingShard(const ServingShard&) = delete;
  ServingShard& operator=(const ServingShard&) = delete;

  ~ServingShard() {
    {
      MutexLock lock(&mu_);
      stopping_ = true;
    }
    work_cv_.notify_all();
    worker_.join();
  }

  Ticket Enqueue(EntityId entity, const FeatureVector& row)
      CM_LOCKS_EXCLUDED(mu_) {
    std::promise<Result<ServedScore>> promise;
    Ticket ticket(entity, index_, promise.get_future());
    if (!TryEnqueue(entity, row, &promise)) {
      promise.set_value(Status::Unavailable(
          "shard " + std::to_string(index_) +
          " queue over watermark; request shed"));
      return ticket;
    }
    work_cv_.notify_one();
    return ticket;
  }

  void Resume() CM_LOCKS_EXCLUDED(mu_) {
    {
      MutexLock lock(&mu_);
      paused_ = false;
    }
    work_cv_.notify_all();
  }

  ShardStats stats() const CM_LOCKS_EXCLUDED(mu_) {
    ShardStats stats;
    stats.shard = index_;
    {
      MutexLock lock(&mu_);
      stats.submitted = submitted_;
      stats.served = served_;
      stats.shed = shed_;
      stats.fault_shed = fault_shed_;
      stats.batches = batches_;
      stats.queue_high_water = queue_high_water_;
      stats.virtual_time_us = virtual_time_us_;
      stats.batch_size_hist = batch_size_hist_;
    }
    // Outside mu_: the ModelServer has its own stats lock and nesting the
    // two buys nothing.
    stats.latency = server_.latency();
    return stats;
  }

 private:
  /// Admission under the queue lock: moves `*promise` into the queue and
  /// returns true, or counts a shed and returns false with `*promise`
  /// intact so the caller can reply on it — the shed reply never touches a
  /// moved-from promise.
  bool TryEnqueue(EntityId entity, const FeatureVector& row,
                  std::promise<Result<ServedScore>>* promise)
      CM_LOCKS_EXCLUDED(mu_) {
    MutexLock lock(&mu_);
    ++submitted_;
    if (stopping_ || queue_.size() >= options_.shed_watermark) {
      ++shed_;
      return false;
    }
    Request request;
    request.entity = entity;
    request.row = row;
    request.promise = std::move(*promise);
    queue_.push_back(std::move(request));
    queue_high_water_ = std::max(queue_high_water_, queue_.size());
    return true;
  }

  void WorkerLoop() CM_LOCKS_EXCLUDED(mu_) {
    for (;;) {
      std::vector<Request> batch;
      {
        MutexLock lock(&mu_);
        while (!stopping_ && (paused_ || queue_.empty())) work_cv_.wait(lock);
        if (queue_.empty()) return;  // stopping, fully drained
        if (options_.real_time_batching && options_.batch_window_us > 0 &&
            !stopping_) {
          // Wall-clock mode (benchmarks): give the window a chance to fill
          // the batch. cv wait releases mu_ while blocked.
          const auto deadline =
              std::chrono::steady_clock::now() +
              std::chrono::microseconds(options_.batch_window_us);
          while (!stopping_ && queue_.size() < options_.max_batch &&
                 work_cv_.wait_until(lock, deadline) !=
                     std::cv_status::timeout) {
          }
        }
        const size_t take = std::min(queue_.size(), options_.max_batch);
        batch.reserve(take);
        for (size_t i = 0; i < take; ++i) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
        ++batches_;
        ++batch_size_hist_[take - 1];
        // The batch window is accounted on the shard's virtual clock; in
        // virtual-time mode (the default) nothing ever sleeps.
        virtual_time_us_ += options_.batch_window_us;
      }
      ProcessBatch(std::move(batch));
    }
  }

  /// Probes + scores one flushed batch and resolves its promises in queue
  /// order. Runs entirely outside mu_ so enqueues never wait on scoring.
  void ProcessBatch(std::vector<Request> batch) CM_LOCKS_EXCLUDED(mu_) {
    std::vector<Status> verdicts;
    verdicts.reserve(batch.size());
    std::vector<const FeatureVector*> rows;
    rows.reserve(batch.size());
    for (const Request& request : batch) {
      Status verdict = ProbeWithRetries(request.entity);
      if (verdict.ok()) rows.push_back(&request.row);
      verdicts.push_back(std::move(verdict));
    }
    const std::vector<double> scores = server_.ScoreBatch(rows);
    CM_CHECK(scores.size() == rows.size());

    std::vector<uint64_t> sequences(batch.size(), 0);
    {
      MutexLock lock(&mu_);
      for (size_t i = 0; i < batch.size(); ++i) {
        if (verdicts[i].ok()) {
          sequences[i] = ++serve_seq_;
          ++served_;
        } else {
          ++fault_shed_;
        }
      }
    }
    size_t next_score = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (verdicts[i].ok()) {
        ServedScore served;
        served.score = scores[next_score++];
        served.shard = index_;
        served.sequence = sequences[i];
        batch[i].promise.set_value(served);
      } else {
        batch[i].promise.set_value(std::move(verdicts[i]));
      }
    }
  }

  /// Runs the serving fault hook with its retry budget; the backoff between
  /// attempts is accounted, never slept. Returns the final verdict.
  Status ProbeWithRetries(EntityId entity) const {
    if (hook_ == nullptr || !hook_->active()) return Status::OK();
    const int budget = std::max(1, hook_->retry().max_attempts);
    Status last = Status::OK();
    for (int attempt = 0; attempt < budget; ++attempt) {
      last = hook_->Probe(entity, attempt);
      if (last.ok()) return last;
      if (!Retryable(last) || attempt + 1 >= budget) break;
      hook_->AccountRetryBackoff(entity, attempt);
    }
    return last;
  }

  const size_t index_;
  const ShardedServingOptions options_;
  const ServingFaultHook* hook_;  // owned by the ShardedServer; may be null
  ModelServer server_;            // internally synchronized
  mutable Mutex mu_{"serving_shard"};
  std::condition_variable_any work_cv_;
  std::deque<Request> queue_ CM_GUARDED_BY(mu_);
  bool stopping_ CM_GUARDED_BY(mu_) = false;
  bool paused_ CM_GUARDED_BY(mu_) = false;
  uint64_t submitted_ CM_GUARDED_BY(mu_) = 0;
  uint64_t served_ CM_GUARDED_BY(mu_) = 0;
  uint64_t shed_ CM_GUARDED_BY(mu_) = 0;
  uint64_t fault_shed_ CM_GUARDED_BY(mu_) = 0;
  uint64_t batches_ CM_GUARDED_BY(mu_) = 0;
  uint64_t serve_seq_ CM_GUARDED_BY(mu_) = 0;
  size_t queue_high_water_ CM_GUARDED_BY(mu_) = 0;
  uint64_t virtual_time_us_ CM_GUARDED_BY(mu_) = 0;
  std::vector<uint64_t> batch_size_hist_ CM_GUARDED_BY(mu_);
  std::thread worker_;  // declared (and started) last
};

// ---- ShardedServer ---------------------------------------------------------

Result<ShardedServer> ShardedServer::Create(
    std::shared_ptr<const CrossModalModel> model, const FeatureSchema* schema,
    std::vector<FeatureId> serving_features, ShardedServingOptions options,
    const FaultPlan& fault_plan) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("sharded server needs at least one shard");
  }
  if (options.max_batch == 0) {
    return Status::InvalidArgument("max_batch must be >= 1");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (options.shed_watermark == 0 ||
      options.shed_watermark > options.queue_capacity) {
    options.shed_watermark = options.queue_capacity;
  }
  const FaultPlan::Entry* serving_entry = fault_plan.ServingEntry();
  if (serving_entry != nullptr) {
    const uint64_t down_after = serving_entry->fault.down_after;
    if (down_after != 0 && down_after != ServiceFaultConfig::kNeverDown) {
      return Status::InvalidArgument(
          "fault plan: mid-range down_after is order-sensitive and not "
          "allowed on the serving path (use 'down' or omit it)");
    }
  }

  CM_ASSIGN_OR_RETURN(
      ShardRouter router,
      ShardRouter::Create(options.num_shards, options.route_seed));
  ShardedServer server(std::move(router), options);
  server.fault_counters_ = std::make_unique<ServiceHealthCounters>();
  server.fault_hook_ = std::make_unique<ServingFaultHook>(
      ServingFaultHook::FromPlan(fault_plan, server.fault_counters_.get()));
  server.shards_.reserve(options.num_shards);
  for (size_t s = 0; s < options.num_shards; ++s) {
    CM_ASSIGN_OR_RETURN(
        ModelServer shard_server,
        ModelServer::Create(model, schema, serving_features,
                            options.serving));
    server.shards_.push_back(std::make_unique<ServingShard>(
        s, std::move(shard_server), options, server.fault_hook_.get()));
  }
  return server;
}

ShardedServer::ShardedServer(ShardRouter router, ShardedServingOptions options)
    : router_(std::move(router)), options_(options) {}

ShardedServer::~ShardedServer() = default;
ShardedServer::ShardedServer(ShardedServer&&) = default;
ShardedServer& ShardedServer::operator=(ShardedServer&&) = default;

Ticket ShardedServer::Submit(EntityId entity, const FeatureVector& row) {
  const size_t shard = router_.ShardOf(entity);
  CM_DCHECK_LT(shard, shards_.size());
  return shards_[shard]->Enqueue(entity, row);
}

Result<ServedScore> ShardedServer::Score(EntityId entity,
                                         const FeatureVector& row) {
  return Submit(entity, row).Wait();
}

std::vector<Result<ServedScore>> ShardedServer::ScoreAll(
    const std::vector<EntityId>& entities,
    const std::vector<const FeatureVector*>& rows) {
  CM_CHECK(entities.size() == rows.size());
  std::vector<Ticket> tickets;
  tickets.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    CM_CHECK(rows[i] != nullptr);
    tickets.push_back(Submit(entities[i], *rows[i]));
  }
  std::vector<Result<ServedScore>> results;
  results.reserve(tickets.size());
  for (Ticket& ticket : tickets) results.push_back(ticket.Wait());
  return results;
}

void ShardedServer::Resume() {
  for (auto& shard : shards_) shard->Resume();
}

ShardedStats ShardedServer::stats() const {
  ShardedStats stats;
  stats.shards.reserve(shards_.size());
  for (const auto& shard : shards_) stats.shards.push_back(shard->stats());
  return stats;
}

ServiceHealth ShardedServer::fault_health() const {
  return fault_counters_->Snapshot(kServingFaultService);
}

}  // namespace crossmodal
