// ModelServer: the deployment-side wrapper around a fitted cross-modal
// model (§2.3's production constraints).
//
// Two constraints from the paper's production setting are enforced here:
//   * nonservable features must never be required at inference time (§6.4)
//     — the server validates the model's serving feature list at creation
//     and strips nonservable slots from incoming rows as defense in depth;
//   * user-facing models need low inference latency — the server records
//     per-request latency and reports count/mean/p50/p95/max.

#ifndef CROSSMODAL_SERVING_MODEL_SERVER_H_
#define CROSSMODAL_SERVING_MODEL_SERVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "features/feature_schema.h"
#include "features/feature_vector.h"
#include "fusion/fusion.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace crossmodal {

/// Server configuration.
struct ServingOptions {
  /// Refuse to serve models whose feature list includes nonservable
  /// features (the safe default).
  bool enforce_servable = true;
  /// Strip nonservable values from incoming rows before scoring (they are
  /// unavailable in production anyway; stripping makes offline evaluation
  /// match serving behavior).
  bool strip_nonservable_inputs = true;
};

/// Request-latency summary in microseconds. Percentiles use nearest-rank
/// semantics (see NearestRankPercentile); p100 always equals max.
struct LatencyStats {
  size_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p100_us = 0.0;
  double max_us = 0.0;
};

/// Nearest-rank percentile over an ascending-sorted, non-empty sample:
/// the smallest element with at least ceil(q * N) observations at or below
/// it (rank ceil(q*N), clamped to [1, N]). Exact sample values only — no
/// interpolation — so p50 of {1, 2} is 1 (rank 1) and p100 is always the
/// max. `q` must be in [0, 1]; q = 0 returns the minimum.
[[nodiscard]] double NearestRankPercentile(const std::vector<double>& sorted,
                                           double q);

/// Owns a fitted model and serves scores over feature rows.
///
/// Thread-safe: Score/ScoreBatch may be called concurrently from many
/// request threads (the fitted model is immutable after Create; the latency
/// log is mutex-guarded).
class ModelServer {
 public:
  /// Validates `serving_features` (the features the deployed model reads)
  /// against the schema's servability flags. Fails with FailedPrecondition
  /// naming the offending feature when enforcement is on.
  [[nodiscard]] static Result<ModelServer> Create(CrossModalModelPtr model,
                                    const FeatureSchema* schema,
                                    std::vector<FeatureId> serving_features,
                                    ServingOptions options = ServingOptions());

  /// Same, but sharing an immutable fitted model — the sharded serving tier
  /// hands one model to every shard without cloning it.
  [[nodiscard]] static Result<ModelServer> Create(
      std::shared_ptr<const CrossModalModel> model, const FeatureSchema* schema,
      std::vector<FeatureId> serving_features,
      ServingOptions options = ServingOptions());

  ModelServer(ModelServer&&) = default;
  ModelServer& operator=(ModelServer&&) = default;

  /// Scores one row (latency recorded).
  double Score(const FeatureVector& row) CM_LOCKS_EXCLUDED(stats_mu_);

  /// Scores a batch in order. Each row's latency is recorded individually
  /// (same contract as Score), with one lock acquisition for the whole
  /// batch.
  std::vector<double> ScoreBatch(const std::vector<const FeatureVector*>& rows)
      CM_LOCKS_EXCLUDED(stats_mu_);

  /// Latency summary over all requests so far.
  LatencyStats latency() const CM_LOCKS_EXCLUDED(stats_mu_);

  /// Requests served.
  size_t requests() const CM_LOCKS_EXCLUDED(stats_mu_);

 private:
  ModelServer(std::shared_ptr<const CrossModalModel> model,
              const FeatureSchema* schema,
              std::vector<FeatureId> serving_features, ServingOptions options);

  double ScoreInternal(const FeatureVector& row);

  std::shared_ptr<const CrossModalModel> model_;
  const FeatureSchema* schema_;
  std::vector<FeatureId> serving_features_;
  std::vector<FeatureId> nonservable_;  // ids to strip from inputs
  ServingOptions options_;
  // unique_ptr keeps ModelServer movable (Result<ModelServer> needs it)
  // while giving the latency log a stable, annotated lock.
  std::unique_ptr<Mutex> stats_mu_;
  std::vector<double> latencies_us_ CM_GUARDED_BY(*stats_mu_);
};

}  // namespace crossmodal

#endif  // CROSSMODAL_SERVING_MODEL_SERVER_H_
