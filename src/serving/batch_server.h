// ShardedServer: the micro-batching, load-shedding serving tier over N
// ModelServer shards (§2.3's "millions of users" deployment setting).
//
// Request path:
//
//   Submit(entity, row)
//     └─ ShardRouter::ShardOf(entity)          pure fn of (seed, entity)
//         └─ shard's bounded MPMC queue        shed kUnavailable past the
//            │                                 queue-depth watermark
//            └─ shard worker thread            flush on max_batch or
//               │                              batch_window_us (virtual
//               │                              clock by default: the window
//               │                              is accounted, never slept)
//               ├─ ServingFaultHook probes     retries per the plan's
//               │                              policy, then sheds
//               └─ ModelServer::ScoreBatch     per-request latency stats
//
// Determinism contract: a request's score is exactly
// ModelServer::Score(row) — bit-identical regardless of shard count, batch
// boundaries, or thread interleaving — and with a fault plan installed,
// *which* requests fail is a pure function of (plan seed, entity, attempt).
// Only queue-shape statistics (batch histogram, high-water, shed counts
// under contention) are schedule-dependent. cmaudit exercises the sharded
// path against direct scoring, with and without faults.
//
// Callers see shed load as Status kUnavailable, the same code the PR-4
// retry layer treats as retryable, so upstream retry/backoff composes with
// admission control unchanged.

#ifndef CROSSMODAL_SERVING_BATCH_SERVER_H_
#define CROSSMODAL_SERVING_BATCH_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "features/feature_schema.h"
#include "features/feature_vector.h"
#include "fusion/fusion.h"
#include "resources/fault_injection.h"
#include "serving/model_server.h"
#include "serving/shard_router.h"
#include "util/result.h"

namespace crossmodal {

/// Serving-tier configuration.
struct ShardedServingOptions {
  /// Number of ModelServer shards (>= 1), each with its own queue + worker.
  size_t num_shards = 4;
  /// A worker flushes a batch when this many requests are waiting (>= 1).
  size_t max_batch = 16;
  /// Batch window: with real_time_batching the worker waits up to this long
  /// for max_batch to fill; by default the window is only *accounted* into
  /// the shard's virtual clock so tests never sleep.
  uint64_t batch_window_us = 200;
  /// Bounded queue capacity per shard (>= 1).
  size_t queue_capacity = 1024;
  /// Admission control sheds arrivals once the queue holds this many
  /// requests; 0 means "at capacity". Clamped to queue_capacity.
  size_t shed_watermark = 0;
  /// Wait out batch_window_us on the wall clock instead of the virtual one.
  /// Benchmarks only — keep off in tests.
  bool real_time_batching = false;
  /// Start with workers paused so tests can fill queues deterministically;
  /// Resume() starts draining. Arrivals past the watermark still shed.
  bool start_paused = false;
  /// Seed of the entity -> shard hash (see ShardRouter).
  uint64_t route_seed = 0x5EED;
  /// Per-shard ModelServer options.
  ServingOptions serving;
};

/// A served request: the score plus where/when it was served.
struct ServedScore {
  double score = 0.0;
  /// Shard that served the request.
  size_t shard = 0;
  /// 1-based position in that shard's serve order (monotonic per shard;
  /// per-client submission order to one shard is preserved).
  uint64_t sequence = 0;
};

/// Handle to one in-flight request. Every submitted request resolves —
/// served, shed (kUnavailable), or failed by the fault hook — even when the
/// server shuts down with requests still queued.
class Ticket {
 public:
  Ticket(Ticket&&) = default;
  Ticket& operator=(Ticket&&) = default;

  /// Blocks until the request resolves; consumes the ticket.
  [[nodiscard]] Result<ServedScore> Wait() { return future_.get(); }

  EntityId entity() const { return entity_; }
  /// Shard the request was routed to.
  size_t shard() const { return shard_; }

 private:
  friend class ShardedServer;
  friend class ServingShard;
  Ticket(EntityId entity, size_t shard,
         std::future<Result<ServedScore>> future)
      : entity_(entity), shard_(shard), future_(std::move(future)) {}

  EntityId entity_;
  size_t shard_;
  std::future<Result<ServedScore>> future_;
};

/// Point-in-time statistics of one shard.
struct ShardStats {
  size_t shard = 0;
  /// Requests routed here (served + shed + fault_shed + still queued).
  uint64_t submitted = 0;
  /// Requests answered with a score.
  uint64_t served = 0;
  /// Requests shed by admission control (kUnavailable at enqueue).
  uint64_t shed = 0;
  /// Requests shed after the fault hook exhausted its retry budget.
  uint64_t fault_shed = 0;
  /// Batches flushed.
  uint64_t batches = 0;
  /// Deepest the queue has been.
  size_t queue_high_water = 0;
  /// Virtual clock: batch_window_us accounted per flush, never slept.
  uint64_t virtual_time_us = 0;
  /// batch_size_hist[b] = flushes of size b + 1 (length max_batch).
  std::vector<uint64_t> batch_size_hist;
  /// Per-shard request latency (from the shard's ModelServer).
  LatencyStats latency;
};

/// Snapshot across every shard plus tier-level totals.
struct ShardedStats {
  std::vector<ShardStats> shards;

  uint64_t submitted() const { return Sum(&ShardStats::submitted); }
  uint64_t served() const { return Sum(&ShardStats::served); }
  uint64_t shed() const { return Sum(&ShardStats::shed); }
  uint64_t fault_shed() const { return Sum(&ShardStats::fault_shed); }
  uint64_t batches() const { return Sum(&ShardStats::batches); }

 private:
  uint64_t Sum(uint64_t ShardStats::* field) const {
    uint64_t total = 0;
    for (const ShardStats& s : shards) total += s.*field;
    return total;
  }
};

class ServingShard;  // one queue + worker + ModelServer (see .cc)

/// The sharded serving tier. Thread-safe: any number of client threads may
/// Submit/Score concurrently; each shard drains its queue on one worker.
class ShardedServer {
 public:
  /// Builds num_shards ModelServers over one shared immutable model.
  /// `fault_plan` may carry a `serving:` entry (see kServingFaultService);
  /// a mid-range down_after on that entry is rejected as order-sensitive.
  /// `schema` must outlive the server; the model is shared.
  [[nodiscard]] static Result<ShardedServer> Create(
      std::shared_ptr<const CrossModalModel> model,
      const FeatureSchema* schema, std::vector<FeatureId> serving_features,
      ShardedServingOptions options = ShardedServingOptions(),
      const FaultPlan& fault_plan = FaultPlan());

  ~ShardedServer();
  ShardedServer(ShardedServer&&);
  ShardedServer& operator=(ShardedServer&&);

  /// Routes and enqueues one request (the row is copied). Never blocks on a
  /// full queue: past the watermark the ticket resolves kUnavailable.
  Ticket Submit(EntityId entity, const FeatureVector& row);

  /// Submit + Wait.
  [[nodiscard]] Result<ServedScore> Score(EntityId entity,
                                          const FeatureVector& row);

  /// Pipelines a whole workload: submits everything, then waits, so batches
  /// actually fill. rows[i] is served for entity `entities[i]`; results are
  /// in input order. The two spans must have equal length.
  std::vector<Result<ServedScore>> ScoreAll(
      const std::vector<EntityId>& entities,
      const std::vector<const FeatureVector*>& rows);

  /// Starts draining when options.start_paused was set (no-op otherwise).
  void Resume();

  /// Per-shard + total statistics.
  ShardedStats stats() const;

  /// Health counters of the serving fault hook (all zero when the plan has
  /// no serving entry).
  ServiceHealth fault_health() const;

  const ShardRouter& router() const { return router_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  ShardedServer(ShardRouter router, ShardedServingOptions options);

  ShardRouter router_;
  ShardedServingOptions options_;
  // Heap-allocated so shards' back-pointers survive moves of the server.
  std::unique_ptr<ServiceHealthCounters> fault_counters_;
  std::unique_ptr<ServingFaultHook> fault_hook_;
  std::vector<std::unique_ptr<ServingShard>> shards_;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_SERVING_BATCH_SERVER_H_
