#include "serving/shard_router.h"

#include "util/random.h"

namespace crossmodal {

Result<ShardRouter> ShardRouter::Create(size_t num_shards,
                                        uint64_t route_seed) {
  if (num_shards == 0) {
    return Status::InvalidArgument("shard router needs at least one shard");
  }
  return ShardRouter(num_shards, route_seed);
}

size_t ShardRouter::ShardOf(EntityId entity) const {
  // DeriveSeed is the repo's avalanche hash; reducing it mod the shard count
  // keeps assignment uniform and a pure function of (seed, entity).
  return static_cast<size_t>(DeriveSeed(route_seed_, entity) % num_shards_);
}

Result<RebalanceReport> ShardRouter::Rebalance(
    size_t new_num_shards, const std::vector<EntityId>& sample) {
  if (new_num_shards == 0) {
    return Status::InvalidArgument("shard router needs at least one shard");
  }
  RebalanceReport report;
  report.old_num_shards = num_shards_;
  report.new_num_shards = new_num_shards;
  report.sampled = sample.size();
  for (EntityId entity : sample) {
    const size_t before = ShardOf(entity);
    const size_t after =
        static_cast<size_t>(DeriveSeed(route_seed_, entity) % new_num_shards);
    if (before != after) ++report.moved;
  }
  num_shards_ = new_num_shards;
  return report;
}

}  // namespace crossmodal
