#include "serving/model_server.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/timer.h"

namespace crossmodal {

double NearestRankPercentile(const std::vector<double>& sorted, double q) {
  CM_CHECK(!sorted.empty());
  CM_DCHECK_GE(q, 0.0);
  CM_DCHECK_LE(q, 1.0);
  const size_t n = sorted.size();
  // rank = ceil(q * n) in [1, n]; index = rank - 1. The old +0.5 rounding
  // over (n - 1) read past the intended rank at small counts (e.g. p50 of
  // two samples returned the larger one).
  const double raw = std::ceil(q * static_cast<double>(n));
  const size_t rank = raw < 1.0 ? 1 : static_cast<size_t>(raw);
  return sorted[std::min(rank, n) - 1];
}

Result<ModelServer> ModelServer::Create(
    CrossModalModelPtr model, const FeatureSchema* schema,
    std::vector<FeatureId> serving_features, ServingOptions options) {
  return Create(std::shared_ptr<const CrossModalModel>(std::move(model)),
                schema, std::move(serving_features), options);
}

Result<ModelServer> ModelServer::Create(
    std::shared_ptr<const CrossModalModel> model, const FeatureSchema* schema,
    std::vector<FeatureId> serving_features, ServingOptions options) {
  if (model == nullptr) return Status::InvalidArgument("model is null");
  if (schema == nullptr) return Status::InvalidArgument("schema is null");
  if (options.enforce_servable) {
    for (FeatureId f : serving_features) {
      if (f < 0 || static_cast<size_t>(f) >= schema->size()) {
        return Status::InvalidArgument("unknown serving feature id " +
                                       std::to_string(f));
      }
      const FeatureDef& def = schema->def(f);
      if (!def.servable) {
        return Status::FailedPrecondition(
            "model requires nonservable feature '" + def.name +
            "'; nonservable features may only feed offline training-data "
            "curation (see §6.4)");
      }
    }
  }
  return ModelServer(std::move(model), schema, std::move(serving_features),
                     options);
}

ModelServer::ModelServer(std::shared_ptr<const CrossModalModel> model,
                         const FeatureSchema* schema,
                         std::vector<FeatureId> serving_features,
                         ServingOptions options)
    : model_(std::move(model)),
      schema_(schema),
      serving_features_(std::move(serving_features)),
      options_(options),
      stats_mu_(std::make_unique<Mutex>("model_server_stats")) {
  for (size_t f = 0; f < schema_->size(); ++f) {
    if (!schema_->def(static_cast<FeatureId>(f)).servable) {
      nonservable_.push_back(static_cast<FeatureId>(f));
    }
  }
}

double ModelServer::ScoreInternal(const FeatureVector& row) {
  if (!options_.strip_nonservable_inputs || nonservable_.empty()) {
    return model_->Score(row);
  }
  bool needs_strip = false;
  for (FeatureId f : nonservable_) {
    if (!row.Get(f).is_missing()) {
      needs_strip = true;
      break;
    }
  }
  if (!needs_strip) return model_->Score(row);
  FeatureVector stripped(row.size());
  for (size_t f = 0; f < row.size(); ++f) {
    const FeatureId id = static_cast<FeatureId>(f);
    if (std::find(nonservable_.begin(), nonservable_.end(), id) !=
        nonservable_.end()) {
      continue;
    }
    const FeatureValue& v = row.Get(id);
    if (!v.is_missing()) stripped.Set(id, v);
  }
  return model_->Score(stripped);
}

double ModelServer::Score(const FeatureVector& row) {
  Timer timer;
  const double score = ScoreInternal(row);
  const double elapsed_us = timer.ElapsedSeconds() * 1e6;
  MutexLock lock(stats_mu_.get());
  latencies_us_.push_back(elapsed_us);
  return score;
}

std::vector<double> ModelServer::ScoreBatch(
    const std::vector<const FeatureVector*>& rows) {
  std::vector<double> out;
  out.reserve(rows.size());
  std::vector<double> elapsed_us;
  elapsed_us.reserve(rows.size());
  for (const FeatureVector* row : rows) {
    CM_CHECK(row != nullptr);
    Timer timer;
    out.push_back(ScoreInternal(*row));
    elapsed_us.push_back(timer.ElapsedSeconds() * 1e6);
  }
  // One acquisition for the whole batch keeps the stats lock off the
  // per-row hot path while preserving Score's per-request latency contract.
  MutexLock lock(stats_mu_.get());
  latencies_us_.insert(latencies_us_.end(), elapsed_us.begin(),
                       elapsed_us.end());
  return out;
}

size_t ModelServer::requests() const {
  MutexLock lock(stats_mu_.get());
  return latencies_us_.size();
}

LatencyStats ModelServer::latency() const {
  std::vector<double> sorted;
  {
    MutexLock lock(stats_mu_.get());
    sorted = latencies_us_;
  }
  LatencyStats stats;
  stats.count = sorted.size();
  if (sorted.empty()) return stats;
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  for (double v : sorted) total += v;
  stats.mean_us = total / static_cast<double>(sorted.size());
  stats.p50_us = NearestRankPercentile(sorted, 0.50);
  stats.p95_us = NearestRankPercentile(sorted, 0.95);
  stats.p100_us = NearestRankPercentile(sorted, 1.0);
  stats.max_us = sorted.back();
  return stats;
}

}  // namespace crossmodal
