// ShardRouter: deterministic entity -> shard assignment for the serving
// tier.
//
// The paper's production deployment (§2.3) spreads user-facing traffic over
// many model replicas; which replica a user lands on must be stable so
// per-shard caches and feature stores stay warm. Routing here is a pure
// function of (route seed, entity id) via the repo's DeriveSeed chain —
// re-routing happens only through an explicit Rebalance() call that returns
// a report of how many sampled entities moved, never implicitly.

#ifndef CROSSMODAL_SERVING_SHARD_ROUTER_H_
#define CROSSMODAL_SERVING_SHARD_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "features/feature_vector.h"
#include "util/result.h"

namespace crossmodal {

/// Outcome of an explicit rebalance: how much of the keyspace moved.
struct RebalanceReport {
  size_t old_num_shards = 0;
  size_t new_num_shards = 0;
  /// Entities sampled to estimate movement.
  size_t sampled = 0;
  /// Sampled entities whose shard assignment changed.
  size_t moved = 0;
};

/// Pure-function entity router over a fixed shard count.
class ShardRouter {
 public:
  /// `num_shards` must be >= 1.
  [[nodiscard]] static Result<ShardRouter> Create(size_t num_shards,
                                                  uint64_t route_seed);

  /// Shard owning `entity` — a pure function of (route seed, entity id);
  /// two routers with equal seed and shard count always agree.
  size_t ShardOf(EntityId entity) const;

  /// Re-routes to `new_num_shards`, estimating keyspace movement over the
  /// `sample` entity ids. The router's assignment changes ONLY through this
  /// call (or never, if it is never called).
  [[nodiscard]] Result<RebalanceReport> Rebalance(
      size_t new_num_shards, const std::vector<EntityId>& sample);

  size_t num_shards() const { return num_shards_; }
  uint64_t route_seed() const { return route_seed_; }

 private:
  ShardRouter(size_t num_shards, uint64_t route_seed)
      : num_shards_(num_shards), route_seed_(route_seed) {}

  size_t num_shards_;
  uint64_t route_seed_;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_SERVING_SHARD_ROUTER_H_
