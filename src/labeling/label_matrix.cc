#include "labeling/label_matrix.h"

#include "util/check.h"

namespace crossmodal {

LabelMatrix::LabelMatrix(std::vector<EntityId> entity_ids,
                         std::vector<std::string> lf_names)
    : entity_ids_(std::move(entity_ids)), lf_names_(std::move(lf_names)) {
  votes_.assign(entity_ids_.size() * lf_names_.size(),
                static_cast<int8_t>(Vote::kAbstain));
}

// at/set sit inside per-(row, lf) inner loops of every coverage/conflict
// statistic, so their bounds checks are debug-only (active under the
// sanitizer presets, compiled out under Release/NDEBUG).
Vote LabelMatrix::at(size_t row, size_t lf) const {
  CM_DCHECK_LT(row, num_rows());
  CM_DCHECK_LT(lf, num_lfs());
  return static_cast<Vote>(votes_[row * num_lfs() + lf]);
}

void LabelMatrix::set(size_t row, size_t lf, Vote v) {
  CM_DCHECK_LT(row, num_rows());
  CM_DCHECK_LT(lf, num_lfs());
  votes_[row * num_lfs() + lf] = static_cast<int8_t>(v);
}

double LabelMatrix::Coverage(size_t lf) const {
  if (num_rows() == 0) return 0.0;
  size_t covered = 0;
  for (size_t i = 0; i < num_rows(); ++i) {
    if (at(i, lf) != Vote::kAbstain) ++covered;
  }
  return static_cast<double>(covered) / static_cast<double>(num_rows());
}

double LabelMatrix::TotalCoverage() const {
  if (num_rows() == 0) return 0.0;
  size_t covered = 0;
  for (size_t i = 0; i < num_rows(); ++i) {
    for (size_t j = 0; j < num_lfs(); ++j) {
      if (at(i, j) != Vote::kAbstain) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) / static_cast<double>(num_rows());
}

double LabelMatrix::Overlap(size_t lf) const {
  if (num_rows() == 0) return 0.0;
  size_t overlapped = 0;
  for (size_t i = 0; i < num_rows(); ++i) {
    if (at(i, lf) == Vote::kAbstain) continue;
    for (size_t j = 0; j < num_lfs(); ++j) {
      if (j != lf && at(i, j) != Vote::kAbstain) {
        ++overlapped;
        break;
      }
    }
  }
  return static_cast<double>(overlapped) / static_cast<double>(num_rows());
}

double LabelMatrix::Conflict(size_t lf) const {
  if (num_rows() == 0) return 0.0;
  size_t conflicted = 0;
  for (size_t i = 0; i < num_rows(); ++i) {
    const Vote v = at(i, lf);
    if (v == Vote::kAbstain) continue;
    for (size_t j = 0; j < num_lfs(); ++j) {
      const Vote w = at(i, j);
      if (j != lf && w != Vote::kAbstain && w != v) {
        ++conflicted;
        break;
      }
    }
  }
  return static_cast<double>(conflicted) / static_cast<double>(num_rows());
}

LabelMatrix ApplyLabelingFunctions(
    const std::vector<const LabelingFunction*>& lfs,
    const std::vector<EntityId>& entities, const FeatureStore& store) {
  std::vector<std::string> names;
  names.reserve(lfs.size());
  for (const auto* lf : lfs) names.push_back(lf->name());
  LabelMatrix matrix(entities, std::move(names));
  const FeatureVector empty_row(store.schema().size());
  for (size_t i = 0; i < entities.size(); ++i) {
    auto row = store.Get(entities[i]);
    const FeatureVector& features = row.ok() ? **row : empty_row;
    for (size_t j = 0; j < lfs.size(); ++j) {
      matrix.set(i, j, lfs[j]->Apply(entities[i], features));
    }
  }
  return matrix;
}

LabelMatrix ApplyLabelingFunctions(const std::vector<LabelingFunctionPtr>& lfs,
                                   const std::vector<EntityId>& entities,
                                   const FeatureStore& store) {
  std::vector<const LabelingFunction*> raw;
  raw.reserve(lfs.size());
  for (const auto& lf : lfs) raw.push_back(lf.get());
  return ApplyLabelingFunctions(raw, entities, store);
}

}  // namespace crossmodal
