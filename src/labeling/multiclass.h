// Multi-class weak supervision (§4.1: "Snorkel supports both binary and
// multi-class classification tasks; ... we evaluate on binary ... but can
// easily extend to multi-class"). This module is that extension: LFs vote a
// class id or abstain, and a conditionally-independent generative model
// with full class-conditional vote tables is fit by EM, mirroring the
// binary GenerativeLabelModel.

#ifndef CROSSMODAL_LABELING_MULTICLASS_H_
#define CROSSMODAL_LABELING_MULTICLASS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "features/feature_vector.h"
#include "util/result.h"

namespace crossmodal {

/// A multi-class LF vote: kAbstainClass or a class id in [0, num_classes).
inline constexpr int32_t kAbstainClass = -1;

/// A labeling function voting one of K classes or abstaining.
class MulticlassLF {
 public:
  using Fn = std::function<int32_t(EntityId, const FeatureVector&)>;

  MulticlassLF(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  const std::string& name() const { return name_; }
  int32_t Apply(EntityId id, const FeatureVector& row) const {
    return fn_(id, row);
  }

  /// LF voting `category_to_class(c)` when categorical feature `feature`
  /// contains category c mapped by the table (class id per category;
  /// kAbstainClass entries never vote). First matching category wins.
  static MulticlassLF FromCategoryMap(std::string name, FeatureId feature,
                                      std::vector<int32_t> category_to_class);

 private:
  std::string name_;
  Fn fn_;
};

/// Dense n x m matrix of multi-class votes.
class MulticlassLabelMatrix {
 public:
  MulticlassLabelMatrix(std::vector<EntityId> entities,
                        std::vector<std::string> lf_names,
                        int32_t num_classes);

  size_t num_rows() const { return entities_.size(); }
  size_t num_lfs() const { return lf_names_.size(); }
  int32_t num_classes() const { return num_classes_; }

  int32_t at(size_t row, size_t lf) const;
  void set(size_t row, size_t lf, int32_t vote);

  EntityId entity(size_t row) const { return entities_[row]; }
  const std::string& lf_name(size_t lf) const { return lf_names_[lf]; }

  /// Fraction of rows where LF `lf` votes.
  double Coverage(size_t lf) const;

 private:
  std::vector<EntityId> entities_;
  std::vector<std::string> lf_names_;
  int32_t num_classes_;
  std::vector<int32_t> votes_;
};

/// Applies multi-class LFs over a store.
MulticlassLabelMatrix ApplyMulticlassLFs(
    const std::vector<MulticlassLF>& lfs,
    const std::vector<EntityId>& entities, const FeatureStore& store,
    int32_t num_classes);

/// A probabilistic multi-class label: a distribution over classes.
struct MulticlassLabel {
  EntityId entity = 0;
  std::vector<double> p;  ///< Size num_classes, sums to 1.
  bool covered = false;

  /// Argmax class.
  int32_t Top() const;
};

/// EM options (subset of the binary model's).
struct MulticlassModelOptions {
  int max_iterations = 100;
  double tolerance = 1e-6;
  double init_precision = 0.8;
  double smoothing = 0.2;
  double prior_anchor = 0.15;
  /// Fixed class prior (size num_classes); uniform when empty.
  std::vector<double> class_balance;
};

/// The fitted multi-class generative model.
class MulticlassLabelModel {
 public:
  /// Fits theta_j[y][v] = P(lf j votes v | true class y) by anchored EM.
  [[nodiscard]] static Result<MulticlassLabelModel> Fit(
      const MulticlassLabelMatrix& matrix,
      const MulticlassModelOptions& options = MulticlassModelOptions());

  /// Posterior class distributions for every row.
  std::vector<MulticlassLabel> Predict(
      const MulticlassLabelMatrix& matrix) const;

  /// Derived P(lf agrees with y | lf votes).
  std::vector<double> accuracies() const;

  int32_t num_classes() const { return num_classes_; }
  int iterations() const { return iterations_; }

 private:
  /// theta_[ (j * K + y) * (K + 1) + (v + 1) ], v = -1 .. K-1.
  std::vector<double> theta_;
  std::vector<double> prior_;
  size_t num_lfs_ = 0;
  int32_t num_classes_ = 0;
  int iterations_ = 0;

  double Theta(size_t j, int32_t y, int32_t v) const;
  std::vector<double> RowPosterior(const MulticlassLabelMatrix& matrix,
                                   size_t row) const;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_LABELING_MULTICLASS_H_
