#include "labeling/labeling_function.h"

namespace crossmodal {

CategoryLF::CategoryLF(std::string name, FeatureId feature, int32_t category,
                       Vote polarity)
    : name_(std::move(name)),
      feature_(feature),
      category_(category),
      polarity_(polarity) {}

Vote CategoryLF::Apply(EntityId /*id*/, const FeatureVector& row) const {
  return row.Get(feature_).HasCategory(category_) ? polarity_
                                                  : Vote::kAbstain;
}

ConjunctionLF::ConjunctionLF(std::string name,
                             std::vector<CategoryPredicate> conjuncts,
                             Vote polarity)
    : name_(std::move(name)),
      conjuncts_(std::move(conjuncts)),
      polarity_(polarity) {}

Vote ConjunctionLF::Apply(EntityId /*id*/, const FeatureVector& row) const {
  for (const auto& c : conjuncts_) {
    if (!row.Get(c.feature).HasCategory(c.category)) return Vote::kAbstain;
  }
  return polarity_;
}

NumericThresholdLF::NumericThresholdLF(std::string name, FeatureId feature,
                                       double threshold, bool above,
                                       Vote polarity)
    : name_(std::move(name)),
      feature_(feature),
      threshold_(threshold),
      above_(above),
      polarity_(polarity) {}

Vote NumericThresholdLF::Apply(EntityId /*id*/,
                               const FeatureVector& row) const {
  const FeatureValue& v = row.Get(feature_);
  if (v.is_missing() || v.type() != FeatureType::kNumeric) {
    return Vote::kAbstain;
  }
  const bool hit = above_ ? v.numeric() >= threshold_
                          : v.numeric() <= threshold_;
  return hit ? polarity_ : Vote::kAbstain;
}

NumericRangeLF::NumericRangeLF(std::string name, FeatureId feature, double lo,
                               double hi, Vote polarity)
    : name_(std::move(name)),
      feature_(feature),
      lo_(lo),
      hi_(hi),
      polarity_(polarity) {}

Vote NumericRangeLF::Apply(EntityId /*id*/, const FeatureVector& row) const {
  const FeatureValue& v = row.Get(feature_);
  if (v.is_missing() || v.type() != FeatureType::kNumeric) {
    return Vote::kAbstain;
  }
  return (v.numeric() >= lo_ && v.numeric() < hi_) ? polarity_
                                                   : Vote::kAbstain;
}

ScoreThresholdLF::ScoreThresholdLF(std::string name,
                                   std::unordered_map<EntityId, double> scores,
                                   double pos_threshold, double neg_threshold)
    : name_(std::move(name)),
      scores_(std::move(scores)),
      pos_threshold_(pos_threshold),
      neg_threshold_(neg_threshold) {}

Vote ScoreThresholdLF::Apply(EntityId id, const FeatureVector& /*row*/) const {
  auto it = scores_.find(id);
  if (it == scores_.end()) return Vote::kAbstain;
  if (it->second >= pos_threshold_) return Vote::kPositive;
  if (it->second <= neg_threshold_) return Vote::kNegative;
  return Vote::kAbstain;
}

}  // namespace crossmodal
