#include "labeling/label_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace crossmodal {

double TemperedDecisionThreshold(double class_balance, double temperature) {
  const double pi = std::clamp(class_balance, 1e-9, 1.0 - 1e-9);
  const double t = std::max(1e-3, temperature);
  const double prior_logit = std::log(pi / (1.0 - pi));
  const double thresh_logit = prior_logit * (1.0 - 1.0 / t);
  return 1.0 / (1.0 + std::exp(-thresh_logit));
}

std::vector<ProbabilisticLabel> MajorityVote(const LabelMatrix& matrix,
                                             double class_prior) {
  std::vector<ProbabilisticLabel> out(matrix.num_rows());
  for (size_t i = 0; i < matrix.num_rows(); ++i) {
    int pos = 0, neg = 0;
    for (size_t j = 0; j < matrix.num_lfs(); ++j) {
      const Vote v = matrix.at(i, j);
      if (v == Vote::kPositive) ++pos;
      if (v == Vote::kNegative) ++neg;
    }
    ProbabilisticLabel& label = out[i];
    label.entity = matrix.entity(i);
    label.covered = (pos + neg) > 0;
    label.p_positive = label.covered
                           ? static_cast<double>(pos) / (pos + neg)
                           : class_prior;
  }
  return out;
}

namespace {

/// Index of a vote within a theta row: {-1, 0, +1} -> {0, 1, 2}.
inline size_t VoteIndex(Vote v) {
  return static_cast<size_t>(static_cast<int>(v) + 1);
}

/// Posterior P(y=1 | row) under theta, in log domain, abstains included.
double RowPosterior(const LabelMatrix& matrix, size_t row,
                    const std::vector<double>& theta, double pi) {
  double log_pos = std::log(pi);
  double log_neg = std::log(1.0 - pi);
  for (size_t j = 0; j < matrix.num_lfs(); ++j) {
    const size_t v = VoteIndex(matrix.at(row, j));
    log_pos += std::log(theta[j * 6 + 3 + v]);
    log_neg += std::log(theta[j * 6 + v]);
  }
  const double m = std::max(log_pos, log_neg);
  const double denom = std::exp(log_pos - m) + std::exp(log_neg - m);
  return std::exp(log_pos - m) / denom;
}

}  // namespace

double GenerativeLabelModel::theta(size_t lf, int y, Vote v) const {
  CM_CHECK(lf < num_lfs_ && (y == 0 || y == 1));
  return theta_[lf * 6 + static_cast<size_t>(y) * 3 + VoteIndex(v)];
}

Result<GenerativeLabelModel> GenerativeLabelModel::Fit(
    const LabelMatrix& matrix, const GenerativeModelOptions& options) {
  const size_t n = matrix.num_rows();
  const size_t m = matrix.num_lfs();
  if (m == 0) return Status::InvalidArgument("label matrix has no LFs");
  size_t covered = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (matrix.at(i, j) != Vote::kAbstain) {
        ++covered;
        break;
      }
    }
  }
  if (covered == 0) {
    return Status::FailedPrecondition("no rows are covered by any LF");
  }

  GenerativeLabelModel model;
  model.num_lfs_ = m;
  model.temperature_ = std::max(1e-3, options.posterior_temperature);
  model.theta_.assign(m * 6, 0.0);
  model.class_balance_ =
      options.fixed_class_balance.value_or(options.init_class_balance);
  const double pi0 = model.class_balance_;

  // ---- Initialization: assume each vote's precision is a lift over the
  // polarity's class prior ("LFs are better than random", where random
  // means matching the prior): prec_v = prior_v + p0 * (1 - prior_v).
  // For an LF with observed vote rates r(v), split r(v) between the classes
  // accordingly: P(lambda=v | y) = r(v) * P(y | v) / P(y).
  const double p0 = options.init_precision;
  const double prec_pos = pi0 + p0 * (1.0 - pi0);          // for +1 votes
  const double prec_neg = (1.0 - pi0) + p0 * pi0;          // for -1 votes
  for (size_t j = 0; j < m; ++j) {
    double rate[3] = {0.0, 0.0, 0.0};
    for (size_t i = 0; i < n; ++i) rate[VoteIndex(matrix.at(i, j))] += 1.0;
    for (double& r : rate) r /= static_cast<double>(n);
    auto cap = [](double v) { return std::clamp(v, 1e-4, 0.95); };
    // v = +1 : precision prec_pos toward y=1.
    const double pos_from_pos = cap(rate[2] * prec_pos / std::max(pi0, 1e-3));
    const double pos_from_neg =
        cap(rate[2] * (1.0 - prec_pos) / std::max(1.0 - pi0, 1e-3));
    // v = -1 : precision prec_neg toward y=0.
    const double neg_from_neg =
        cap(rate[0] * prec_neg / std::max(1.0 - pi0, 1e-3));
    const double neg_from_pos =
        cap(rate[0] * (1.0 - prec_neg) / std::max(pi0, 1e-3));
    double* t_neg = &model.theta_[j * 6];      // y = 0 row
    double* t_pos = &model.theta_[j * 6 + 3];  // y = 1 row
    t_pos[2] = pos_from_pos;
    t_neg[2] = pos_from_neg;
    t_pos[0] = neg_from_pos;
    t_neg[0] = neg_from_neg;
    t_pos[1] = std::max(1e-4, 1.0 - t_pos[0] - t_pos[2]);
    t_neg[1] = std::max(1e-4, 1.0 - t_neg[0] - t_neg[2]);
  }

  std::vector<double> posterior(n, model.class_balance_);
  std::vector<double> log_odds(n, 0.0);
  const double s = options.smoothing;
  const std::vector<double> theta_init = model.theta_;
  const double anchor = std::max(0.0, options.prior_anchor) *
                        static_cast<double>(n);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    model.iterations_ = iter + 1;
    // ---- E-step: full-row posterior log-odds. ---------------------------
    const double prior_logit =
        std::log(model.class_balance_ / (1.0 - model.class_balance_));
    for (size_t i = 0; i < n; ++i) {
      double lo = prior_logit;
      for (size_t j = 0; j < m; ++j) {
        const size_t v = VoteIndex(matrix.at(i, j));
        lo += std::log(model.theta_[j * 6 + 3 + v]) -
              std::log(model.theta_[j * 6 + v]);
      }
      log_odds[i] = lo;
      posterior[i] = 1.0 / (1.0 + std::exp(-lo));
    }
    // ---- M-step. (A leave-one-out variant — excluding LF j's own vote
    // from the evidence — removes the mild self-reinforcement bias of EM,
    // but collapses when few LFs are available; the full-posterior M-step
    // is the stable choice, with accuracies known to shrink a few points
    // toward the ensemble mean.) ------------------------------------------
    double max_delta = 0.0;
    for (size_t j = 0; j < m; ++j) {
      double count_pos[3] = {s, s, s};
      double count_neg[3] = {s, s, s};
      for (size_t v = 0; v < 3; ++v) {
        count_pos[v] += anchor * pi0 * theta_init[j * 6 + 3 + v];
        count_neg[v] += anchor * (1.0 - pi0) * theta_init[j * 6 + v];
      }
      for (size_t i = 0; i < n; ++i) {
        const size_t v = VoteIndex(matrix.at(i, j));
        count_pos[v] += posterior[i];
        count_neg[v] += 1.0 - posterior[i];
      }
      const double total_pos = count_pos[0] + count_pos[1] + count_pos[2];
      const double total_neg = count_neg[0] + count_neg[1] + count_neg[2];
      for (size_t v = 0; v < 3; ++v) {
        const double new_pos = count_pos[v] / total_pos;
        const double new_neg = count_neg[v] / total_neg;
        max_delta =
            std::max(max_delta, std::abs(new_pos - model.theta_[j * 6 + 3 + v]));
        max_delta =
            std::max(max_delta, std::abs(new_neg - model.theta_[j * 6 + v]));
        model.theta_[j * 6 + 3 + v] = new_pos;
        model.theta_[j * 6 + v] = new_neg;
      }
    }
    if (!options.fixed_class_balance.has_value()) {
      double mean = 0.0;
      for (double q : posterior) mean += q;
      mean /= static_cast<double>(n);
      mean = std::clamp(mean, 1e-4, 1.0 - 1e-4);
      max_delta = std::max(max_delta, std::abs(mean - model.class_balance_));
      model.class_balance_ = mean;
    }
    if (max_delta < options.tolerance) break;
  }
  return model;
}

std::vector<ProbabilisticLabel> GenerativeLabelModel::Predict(
    const LabelMatrix& matrix) const {
  CM_CHECK(matrix.num_lfs() == num_lfs_)
      << "matrix LF arity does not match the fitted model";
  std::vector<ProbabilisticLabel> out(matrix.num_rows());
  for (size_t i = 0; i < matrix.num_rows(); ++i) {
    ProbabilisticLabel& label = out[i];
    label.entity = matrix.entity(i);
    label.covered = false;
    for (size_t j = 0; j < matrix.num_lfs(); ++j) {
      if (matrix.at(i, j) != Vote::kAbstain) {
        label.covered = true;
        break;
      }
    }
    if (!label.covered) {
      label.p_positive = class_balance_;
      continue;
    }
    double p = RowPosterior(matrix, i, theta_, class_balance_);
    if (temperature_ != 1.0) {
      // Temper the log-odds relative to the prior (correlated-LF
      // double-counting correction; see GenerativeModelOptions).
      p = std::clamp(p, 1e-12, 1.0 - 1e-12);
      const double prior_logit =
          std::log(class_balance_ / (1.0 - class_balance_));
      const double logit = std::log(p / (1.0 - p));
      const double tempered =
          prior_logit + (logit - prior_logit) / temperature_;
      p = 1.0 / (1.0 + std::exp(-tempered));
    }
    label.p_positive = p;
  }
  return out;
}

std::vector<double> GenerativeLabelModel::accuracies() const {
  std::vector<double> out(num_lfs_);
  const double pi = class_balance_;
  for (size_t j = 0; j < num_lfs_; ++j) {
    // P(vote agrees with y | vote cast).
    const double agree = pi * theta_[j * 6 + 3 + 2] +        // y=1, v=+1
                         (1.0 - pi) * theta_[j * 6 + 0];     // y=0, v=-1
    const double vote = pi * (theta_[j * 6 + 3 + 0] + theta_[j * 6 + 3 + 2]) +
                        (1.0 - pi) * (theta_[j * 6 + 0] + theta_[j * 6 + 2]);
    out[j] = vote > 0.0 ? agree / vote : 0.5;
  }
  return out;
}

std::vector<double> GenerativeLabelModel::propensities() const {
  std::vector<double> out(num_lfs_);
  const double pi = class_balance_;
  for (size_t j = 0; j < num_lfs_; ++j) {
    out[j] = pi * (1.0 - theta_[j * 6 + 3 + 1]) +
             (1.0 - pi) * (1.0 - theta_[j * 6 + 1]);
  }
  return out;
}

}  // namespace crossmodal
