// LF and label-model quality evaluation against labeled data (the paper's
// development-set workflow, §4.2, and the Table 3 / §6.7 metrics).

#ifndef CROSSMODAL_LABELING_LF_QUALITY_H_
#define CROSSMODAL_LABELING_LF_QUALITY_H_

#include <string>
#include <vector>

#include "labeling/label_matrix.h"
#include "labeling/label_model.h"

namespace crossmodal {

/// Quality of one LF measured on labeled data.
struct LFQuality {
  std::string name;
  double coverage = 0.0;   ///< Fraction of points it votes on.
  double precision = 0.0;  ///< P(vote correct | vote cast).
  double recall = 0.0;     ///< Of its polarity class: fraction it catches.
  double f1 = 0.0;
  int polarity = 0;  ///< +1 / -1 dominant polarity, 0 if it never votes.
};

/// Precision/recall/F1 of hard decisions against binary ground truth.
struct BinaryQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double coverage = 0.0;  ///< Fraction of points given a (non-prior) label.
  double accuracy = 0.0;
};

/// Evaluates each LF column of `matrix` against ground truth (`labels[i]`
/// in {0,1} for row i).
std::vector<LFQuality> EvaluateLFs(const LabelMatrix& matrix,
                                   const std::vector<int>& labels);

/// Evaluates probabilistic labels thresholded at `threshold`. Positive
/// predictions are p >= threshold among covered points; uncovered points
/// count as negative predictions (they are not added to training
/// positives). Recall is measured over all true positives.
BinaryQuality EvaluateProbabilisticLabels(
    const std::vector<ProbabilisticLabel>& labels,
    const std::vector<int>& truth, double threshold = 0.5);

}  // namespace crossmodal

#endif  // CROSSMODAL_LABELING_LF_QUALITY_H_
