// Labeling functions: programmatic weak-label sources (§4.1).
//
// An LF inspects an entity's row in the common feature space and votes
// positive, negative, or abstains. LFs are offline artifacts — they may read
// nonservable features (§6.4) because they only run during training-data
// curation, never at serving time.

#ifndef CROSSMODAL_LABELING_LABELING_FUNCTION_H_
#define CROSSMODAL_LABELING_LABELING_FUNCTION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "features/feature_vector.h"

namespace crossmodal {

/// An LF's vote on one data point.
enum class Vote : int8_t {
  kNegative = -1,
  kAbstain = 0,
  kPositive = 1,
};

/// A labeling function over the common feature space.
class LabelingFunction {
 public:
  virtual ~LabelingFunction() = default;

  /// Human-readable identifier (shown in quality reports).
  virtual const std::string& name() const = 0;

  /// Votes on one data point. `id` is provided so LFs backed by external
  /// per-entity scores (e.g. label propagation, §4.4) can join on it.
  virtual Vote Apply(EntityId id, const FeatureVector& row) const = 0;
};

using LabelingFunctionPtr = std::unique_ptr<LabelingFunction>;

/// Votes `polarity` when categorical feature `feature` contains `category`;
/// abstains otherwise (the canonical mined order-1 LF, §4.3).
class CategoryLF : public LabelingFunction {
 public:
  CategoryLF(std::string name, FeatureId feature, int32_t category,
             Vote polarity);

  const std::string& name() const override { return name_; }
  Vote Apply(EntityId id, const FeatureVector& row) const override;

  FeatureId feature() const { return feature_; }
  int32_t category() const { return category_; }
  Vote polarity() const { return polarity_; }

 private:
  std::string name_;
  FeatureId feature_;
  int32_t category_;
  Vote polarity_;
};

/// One conjunct of a conjunction LF: feature `feature` contains `category`.
struct CategoryPredicate {
  FeatureId feature;
  int32_t category;
};

/// Votes `polarity` when every conjunct holds (higher-order mined LF).
class ConjunctionLF : public LabelingFunction {
 public:
  ConjunctionLF(std::string name, std::vector<CategoryPredicate> conjuncts,
                Vote polarity);

  const std::string& name() const override { return name_; }
  Vote Apply(EntityId id, const FeatureVector& row) const override;

  const std::vector<CategoryPredicate>& conjuncts() const {
    return conjuncts_;
  }
  Vote polarity() const { return polarity_; }

 private:
  std::string name_;
  std::vector<CategoryPredicate> conjuncts_;
  Vote polarity_;
};

/// Votes `polarity` when numeric feature `feature` is present and compares
/// `>= threshold` (or `<=` when `above` is false); abstains otherwise.
class NumericThresholdLF : public LabelingFunction {
 public:
  NumericThresholdLF(std::string name, FeatureId feature, double threshold,
                     bool above, Vote polarity);

  const std::string& name() const override { return name_; }
  Vote Apply(EntityId id, const FeatureVector& row) const override;

 private:
  std::string name_;
  FeatureId feature_;
  double threshold_;
  bool above_;
  Vote polarity_;
};

/// Votes `polarity` when numeric feature `feature` is present and falls in
/// [lo, hi); abstains otherwise (mined numeric-bucket LF).
class NumericRangeLF : public LabelingFunction {
 public:
  NumericRangeLF(std::string name, FeatureId feature, double lo, double hi,
                 Vote polarity);

  const std::string& name() const override { return name_; }
  Vote Apply(EntityId id, const FeatureVector& row) const override;

 private:
  std::string name_;
  FeatureId feature_;
  double lo_;
  double hi_;
  Vote polarity_;
};

/// LF backed by an external per-entity score (e.g. the label-propagation
/// output): votes positive above `pos_threshold`, negative below
/// `neg_threshold`, abstains in between or when the entity has no score.
class ScoreThresholdLF : public LabelingFunction {
 public:
  ScoreThresholdLF(std::string name,
                   std::unordered_map<EntityId, double> scores,
                   double pos_threshold, double neg_threshold);

  const std::string& name() const override { return name_; }
  Vote Apply(EntityId id, const FeatureVector& row) const override;

  size_t num_scores() const { return scores_.size(); }

 private:
  std::string name_;
  std::unordered_map<EntityId, double> scores_;
  double pos_threshold_;
  double neg_threshold_;
};

/// Arbitrary user-written LF (the interface domain experts use, §6.7.1).
class LambdaLF : public LabelingFunction {
 public:
  using Fn = std::function<Vote(EntityId, const FeatureVector&)>;

  LambdaLF(std::string name, Fn fn) : name_(std::move(name)), fn_(std::move(fn)) {}

  const std::string& name() const override { return name_; }
  Vote Apply(EntityId id, const FeatureVector& row) const override {
    return fn_(id, row);
  }

 private:
  std::string name_;
  Fn fn_;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_LABELING_LABELING_FUNCTION_H_
