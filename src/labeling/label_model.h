// Label models: combine LF votes into probabilistic labels (§4.1 step 3).
//
// GenerativeLabelModel is the Snorkel(-Drybell) conditionally-independent
// generative model: each LF j has a full class-conditional vote distribution
// theta_j[y][v] = P(lambda_j = v | y) for v in {-1, 0, +1}, learned with EM
// over the unlabeled votes together with (optionally) the class balance pi;
// the posterior P(y=1 | lambda row) is the probabilistic label. Modeling the
// abstain state per class is essential for one-sided LFs (e.g. mined
// positive-only rules under heavy class imbalance): for them, *voting at
// all* is the evidence, which a class-independent propensity cannot express.
// MajorityVote is the standard weak baseline.

#ifndef CROSSMODAL_LABELING_LABEL_MODEL_H_
#define CROSSMODAL_LABELING_LABEL_MODEL_H_

#include <optional>
#include <vector>

#include "labeling/label_matrix.h"
#include "util/result.h"

namespace crossmodal {

/// A probabilistic training label.
struct ProbabilisticLabel {
  EntityId entity = 0;
  double p_positive = 0.5;  ///< Posterior P(y = 1 | LF votes).
  bool covered = false;     ///< False when every LF abstained.
};

/// The decision threshold on tempered posteriors equivalent to 0.5 on the
/// untempered posterior: sigmoid(prior_logit * (1 - 1/T)). Use this when
/// computing hard P/R/F1 of tempered probabilistic labels.
double TemperedDecisionThreshold(double class_balance, double temperature);

/// Majority vote over non-abstaining LFs; uncovered rows fall back to the
/// provided class prior.
std::vector<ProbabilisticLabel> MajorityVote(const LabelMatrix& matrix,
                                             double class_prior);

/// Configuration of the EM fit.
struct GenerativeModelOptions {
  int max_iterations = 100;
  double tolerance = 1e-6;  ///< Stop when params move less than this.
  /// Assumed precision of each LF's votes used to initialize theta (the
  /// "LFs are better than random" prior Snorkel requires).
  double init_precision = 0.8;
  /// Dirichlet-style smoothing added to each vote-count cell in the M-step
  /// (keeps theta off the simplex boundary).
  double smoothing = 0.2;
  /// Strength of the Dirichlet prior anchoring the M-step at the
  /// better-than-random initialization, as a fraction of the dataset size.
  /// Under model misspecification (correlated LFs), unanchored EM can drift
  /// to label-inverting fixed points; the anchor is the EM analogue of
  /// Snorkel's "LFs beat random" constraint. 0 disables anchoring.
  double prior_anchor = 0.15;
  /// If set, the class balance pi is fixed (e.g. estimated from the dev
  /// set); otherwise it is learned by EM.
  std::optional<double> fixed_class_balance;
  double init_class_balance = 0.1;
  /// Tempering of the predicted posteriors: the log-odds relative to the
  /// class prior are divided by this. Mined LFs violate the conditional
  /// independence assumption (they fire on the same underlying risky
  /// values), so the untempered model double-counts evidence; T in [2, 4]
  /// is a standard correction and yields better-calibrated soft training
  /// labels. 1.0 = the exact independent-model posterior.
  double posterior_temperature = 1.0;
};

/// The fitted generative model.
class GenerativeLabelModel {
 public:
  /// Fits the model to a label matrix. Fails when the matrix has no LFs or
  /// no covered rows.
  [[nodiscard]] static Result<GenerativeLabelModel> Fit(
      const LabelMatrix& matrix,
      const GenerativeModelOptions& options = GenerativeModelOptions());

  /// Probabilistic labels for every row of `matrix` (which must have the
  /// same LF columns as the training matrix).
  std::vector<ProbabilisticLabel> Predict(const LabelMatrix& matrix) const;

  /// Learned P(lambda_j = v | y); vote v indexed as 0:-1, 1:abstain, 2:+1.
  double theta(size_t lf, int y, Vote v) const;

  /// Derived P(lambda_j agrees with y | lambda_j votes).
  std::vector<double> accuracies() const;
  /// Derived P(lambda_j != 0) under the learned class balance.
  std::vector<double> propensities() const;
  /// Learned (or fixed) P(y = 1).
  double class_balance() const { return class_balance_; }
  /// EM iterations actually run.
  int iterations() const { return iterations_; }

 private:
  /// theta_[j*6 + y*3 + v] with v in {0:-1, 1:abstain, 2:+1}.
  std::vector<double> theta_;
  size_t num_lfs_ = 0;
  double class_balance_ = 0.5;
  double temperature_ = 1.0;
  int iterations_ = 0;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_LABELING_LABEL_MODEL_H_
