#include "labeling/multiclass.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace crossmodal {

MulticlassLF MulticlassLF::FromCategoryMap(
    std::string name, FeatureId feature,
    std::vector<int32_t> category_to_class) {
  return MulticlassLF(
      std::move(name),
      [feature, table = std::move(category_to_class)](
          EntityId, const FeatureVector& row) -> int32_t {
        const FeatureValue& v = row.Get(feature);
        if (v.is_missing() || v.type() != FeatureType::kCategorical) {
          return kAbstainClass;
        }
        for (int32_t c : v.categories()) {
          if (c >= 0 && static_cast<size_t>(c) < table.size() &&
              table[static_cast<size_t>(c)] != kAbstainClass) {
            return table[static_cast<size_t>(c)];
          }
        }
        return kAbstainClass;
      });
}

MulticlassLabelMatrix::MulticlassLabelMatrix(
    std::vector<EntityId> entities, std::vector<std::string> lf_names,
    int32_t num_classes)
    : entities_(std::move(entities)),
      lf_names_(std::move(lf_names)),
      num_classes_(num_classes) {
  CM_CHECK(num_classes_ >= 2);
  votes_.assign(entities_.size() * lf_names_.size(), kAbstainClass);
}

int32_t MulticlassLabelMatrix::at(size_t row, size_t lf) const {
  CM_CHECK(row < num_rows() && lf < num_lfs());
  return votes_[row * num_lfs() + lf];
}

void MulticlassLabelMatrix::set(size_t row, size_t lf, int32_t vote) {
  CM_CHECK(row < num_rows() && lf < num_lfs());
  CM_CHECK(vote >= kAbstainClass && vote < num_classes_)
      << "vote out of range: " << vote;
  votes_[row * num_lfs() + lf] = vote;
}

double MulticlassLabelMatrix::Coverage(size_t lf) const {
  if (num_rows() == 0) return 0.0;
  size_t covered = 0;
  for (size_t i = 0; i < num_rows(); ++i) {
    covered += (at(i, lf) != kAbstainClass);
  }
  return static_cast<double>(covered) / static_cast<double>(num_rows());
}

MulticlassLabelMatrix ApplyMulticlassLFs(
    const std::vector<MulticlassLF>& lfs,
    const std::vector<EntityId>& entities, const FeatureStore& store,
    int32_t num_classes) {
  std::vector<std::string> names;
  names.reserve(lfs.size());
  for (const auto& lf : lfs) names.push_back(lf.name());
  MulticlassLabelMatrix matrix(entities, std::move(names), num_classes);
  const FeatureVector empty(store.schema().size());
  for (size_t i = 0; i < entities.size(); ++i) {
    auto row = store.Get(entities[i]);
    const FeatureVector& features = row.ok() ? **row : empty;
    for (size_t j = 0; j < lfs.size(); ++j) {
      int32_t vote = lfs[j].Apply(entities[i], features);
      if (vote < kAbstainClass || vote >= num_classes) vote = kAbstainClass;
      matrix.set(i, j, vote);
    }
  }
  return matrix;
}

int32_t MulticlassLabel::Top() const {
  if (p.empty()) return kAbstainClass;
  return static_cast<int32_t>(
      std::max_element(p.begin(), p.end()) - p.begin());
}

double MulticlassLabelModel::Theta(size_t j, int32_t y, int32_t v) const {
  const size_t K = static_cast<size_t>(num_classes_);
  return theta_[(j * K + static_cast<size_t>(y)) * (K + 1) +
                static_cast<size_t>(v + 1)];
}

std::vector<double> MulticlassLabelModel::RowPosterior(
    const MulticlassLabelMatrix& matrix, size_t row) const {
  const int32_t K = num_classes_;
  std::vector<double> log_p(static_cast<size_t>(K));
  for (int32_t y = 0; y < K; ++y) {
    double lp = std::log(prior_[static_cast<size_t>(y)]);
    for (size_t j = 0; j < num_lfs_; ++j) {
      lp += std::log(Theta(j, y, matrix.at(row, j)));
    }
    log_p[static_cast<size_t>(y)] = lp;
  }
  const double m = *std::max_element(log_p.begin(), log_p.end());
  double total = 0.0;
  for (double& v : log_p) {
    v = std::exp(v - m);
    total += v;
  }
  for (double& v : log_p) v /= total;
  return log_p;
}

Result<MulticlassLabelModel> MulticlassLabelModel::Fit(
    const MulticlassLabelMatrix& matrix,
    const MulticlassModelOptions& options) {
  const size_t n = matrix.num_rows();
  const size_t m = matrix.num_lfs();
  const int32_t K = matrix.num_classes();
  if (m == 0) return Status::InvalidArgument("matrix has no LFs");
  if (n == 0) return Status::InvalidArgument("matrix has no rows");
  if (!options.class_balance.empty() &&
      options.class_balance.size() != static_cast<size_t>(K)) {
    return Status::InvalidArgument("class balance arity mismatch");
  }

  MulticlassLabelModel model;
  model.num_lfs_ = m;
  model.num_classes_ = K;
  model.prior_.assign(static_cast<size_t>(K), 1.0 / K);
  if (!options.class_balance.empty()) {
    double total = 0.0;
    for (double p : options.class_balance) total += p;
    if (total <= 0.0) return Status::InvalidArgument("bad class balance");
    for (int32_t y = 0; y < K; ++y) {
      model.prior_[static_cast<size_t>(y)] =
          options.class_balance[static_cast<size_t>(y)] / total;
    }
  }

  // ---- Initialization: a vote for class v has precision prec toward v
  // (lift over the prior), spread uniformly over the other classes. -------
  model.theta_.assign(m * static_cast<size_t>(K) * (K + 1), 0.0);
  const size_t stride = static_cast<size_t>(K + 1);
  for (size_t j = 0; j < m; ++j) {
    std::vector<double> rate(static_cast<size_t>(K + 1), 0.0);
    for (size_t i = 0; i < n; ++i) {
      rate[static_cast<size_t>(matrix.at(i, j) + 1)] += 1.0;
    }
    for (double& r : rate) r /= static_cast<double>(n);
    for (int32_t y = 0; y < K; ++y) {
      double* row =
          &model.theta_[(j * static_cast<size_t>(K) +
                         static_cast<size_t>(y)) * stride];
      double assigned = 0.0;
      for (int32_t v = 0; v < K; ++v) {
        const double pi_v = model.prior_[static_cast<size_t>(v)];
        const double prec = pi_v + options.init_precision * (1.0 - pi_v);
        const double share = v == y ? prec : (1.0 - prec) / (K - 1);
        const double pv = std::clamp(
            rate[static_cast<size_t>(v + 1)] * share /
                std::max(model.prior_[static_cast<size_t>(y)], 1e-3),
            1e-4, 0.9);
        row[static_cast<size_t>(v + 1)] = pv;
        assigned += pv;
      }
      row[0] = std::max(1e-4, 1.0 - assigned);  // abstain mass
      // Normalize.
      double total = 0.0;
      for (size_t v = 0; v < stride; ++v) total += row[v];
      for (size_t v = 0; v < stride; ++v) row[v] /= total;
    }
  }
  const std::vector<double> theta_init = model.theta_;
  const double anchor =
      std::max(0.0, options.prior_anchor) * static_cast<double>(n);

  std::vector<std::vector<double>> posterior(
      n, std::vector<double>(static_cast<size_t>(K), 1.0 / K));
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    model.iterations_ = iter + 1;
    // E-step.
    for (size_t i = 0; i < n; ++i) posterior[i] = model.RowPosterior(matrix, i);
    // M-step.
    double max_delta = 0.0;
    for (size_t j = 0; j < m; ++j) {
      for (int32_t y = 0; y < K; ++y) {
        std::vector<double> counts(stride, options.smoothing);
        for (size_t v = 0; v < stride; ++v) {
          counts[v] += anchor * model.prior_[static_cast<size_t>(y)] *
                       theta_init[(j * static_cast<size_t>(K) +
                                   static_cast<size_t>(y)) * stride + v];
        }
        for (size_t i = 0; i < n; ++i) {
          counts[static_cast<size_t>(matrix.at(i, j) + 1)] +=
              posterior[i][static_cast<size_t>(y)];
        }
        double total = 0.0;
        for (double c : counts) total += c;
        double* row = &model.theta_[(j * static_cast<size_t>(K) +
                                     static_cast<size_t>(y)) * stride];
        for (size_t v = 0; v < stride; ++v) {
          const double next = counts[v] / total;
          max_delta = std::max(max_delta, std::abs(next - row[v]));
          row[v] = next;
        }
      }
    }
    if (max_delta < options.tolerance) break;
  }
  return model;
}

std::vector<MulticlassLabel> MulticlassLabelModel::Predict(
    const MulticlassLabelMatrix& matrix) const {
  CM_CHECK(matrix.num_lfs() == num_lfs_ &&
           matrix.num_classes() == num_classes_);
  std::vector<MulticlassLabel> out(matrix.num_rows());
  for (size_t i = 0; i < matrix.num_rows(); ++i) {
    out[i].entity = matrix.entity(i);
    out[i].covered = false;
    for (size_t j = 0; j < num_lfs_; ++j) {
      if (matrix.at(i, j) != kAbstainClass) {
        out[i].covered = true;
        break;
      }
    }
    out[i].p = out[i].covered ? RowPosterior(matrix, i) : prior_;
  }
  return out;
}

std::vector<double> MulticlassLabelModel::accuracies() const {
  std::vector<double> out(num_lfs_);
  for (size_t j = 0; j < num_lfs_; ++j) {
    double agree = 0.0, vote = 0.0;
    for (int32_t y = 0; y < num_classes_; ++y) {
      const double pi = prior_[static_cast<size_t>(y)];
      for (int32_t v = 0; v < num_classes_; ++v) {
        const double p = pi * Theta(j, y, v);
        vote += p;
        if (v == y) agree += p;
      }
    }
    out[j] = vote > 0.0 ? agree / vote : 1.0 / num_classes_;
  }
  return out;
}

}  // namespace crossmodal
