// LabelMatrix: the n x m matrix of LF votes Snorkel's generative model fits.

#ifndef CROSSMODAL_LABELING_LABEL_MATRIX_H_
#define CROSSMODAL_LABELING_LABEL_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "features/feature_vector.h"
#include "labeling/labeling_function.h"

namespace crossmodal {

/// Dense matrix of votes: rows are data points, columns are LFs.
class LabelMatrix {
 public:
  LabelMatrix() = default;

  /// `entity_ids[i]` identifies row i; `lf_names[j]` labels column j.
  LabelMatrix(std::vector<EntityId> entity_ids,
              std::vector<std::string> lf_names);

  size_t num_rows() const { return entity_ids_.size(); }
  size_t num_lfs() const { return lf_names_.size(); }

  Vote at(size_t row, size_t lf) const;
  void set(size_t row, size_t lf, Vote v);

  EntityId entity(size_t row) const { return entity_ids_[row]; }
  const std::string& lf_name(size_t lf) const { return lf_names_[lf]; }
  const std::vector<EntityId>& entity_ids() const { return entity_ids_; }

  /// Fraction of rows where LF `lf` does not abstain.
  double Coverage(size_t lf) const;

  /// Fraction of rows where at least one LF votes.
  double TotalCoverage() const;

  /// Fraction of rows where LF `lf` votes and at least one other LF votes.
  double Overlap(size_t lf) const;

  /// Fraction of rows where LF `lf` votes and some other LF votes the
  /// opposite polarity.
  double Conflict(size_t lf) const;

 private:
  std::vector<EntityId> entity_ids_;
  std::vector<std::string> lf_names_;
  std::vector<int8_t> votes_;  // row-major n x m
};

/// Applies `lfs` to every listed entity's feature row, producing the label
/// matrix. Entities missing from the store get all-abstain rows.
LabelMatrix ApplyLabelingFunctions(
    const std::vector<const LabelingFunction*>& lfs,
    const std::vector<EntityId>& entities, const FeatureStore& store);

/// Convenience overload over owned LFs.
LabelMatrix ApplyLabelingFunctions(const std::vector<LabelingFunctionPtr>& lfs,
                                   const std::vector<EntityId>& entities,
                                   const FeatureStore& store);

}  // namespace crossmodal

#endif  // CROSSMODAL_LABELING_LABEL_MATRIX_H_
