#include "labeling/lf_quality.h"

#include "util/logging.h"

namespace crossmodal {

namespace {
double SafeDiv(double num, double den) { return den > 0.0 ? num / den : 0.0; }
double F1(double p, double r) { return SafeDiv(2.0 * p * r, p + r); }
}  // namespace

std::vector<LFQuality> EvaluateLFs(const LabelMatrix& matrix,
                                   const std::vector<int>& labels) {
  CM_CHECK(labels.size() == matrix.num_rows());
  std::vector<LFQuality> out(matrix.num_lfs());
  size_t n_pos = 0, n_neg = 0;
  for (int y : labels) (y == 1 ? n_pos : n_neg)++;

  for (size_t j = 0; j < matrix.num_lfs(); ++j) {
    LFQuality& q = out[j];
    q.name = matrix.lf_name(j);
    size_t votes = 0, correct = 0, pos_votes = 0, neg_votes = 0;
    size_t true_hits_pos = 0, true_hits_neg = 0;
    for (size_t i = 0; i < matrix.num_rows(); ++i) {
      const Vote v = matrix.at(i, j);
      if (v == Vote::kAbstain) continue;
      ++votes;
      const int y = labels[i];
      if (v == Vote::kPositive) {
        ++pos_votes;
        if (y == 1) {
          ++correct;
          ++true_hits_pos;
        }
      } else {
        ++neg_votes;
        if (y == 0) {
          ++correct;
          ++true_hits_neg;
        }
      }
    }
    q.coverage = SafeDiv(static_cast<double>(votes),
                         static_cast<double>(matrix.num_rows()));
    if (votes == 0) continue;
    q.polarity = pos_votes >= neg_votes ? 1 : -1;
    q.precision = SafeDiv(static_cast<double>(correct),
                          static_cast<double>(votes));
    // Recall of the dominant polarity's class.
    q.recall = q.polarity == 1
                   ? SafeDiv(static_cast<double>(true_hits_pos),
                             static_cast<double>(n_pos))
                   : SafeDiv(static_cast<double>(true_hits_neg),
                             static_cast<double>(n_neg));
    q.f1 = F1(q.precision, q.recall);
  }
  return out;
}

BinaryQuality EvaluateProbabilisticLabels(
    const std::vector<ProbabilisticLabel>& labels,
    const std::vector<int>& truth, double threshold) {
  CM_CHECK(labels.size() == truth.size());
  BinaryQuality q;
  size_t tp = 0, fp = 0, fn = 0, tn = 0, covered = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const bool pred = labels[i].covered && labels[i].p_positive >= threshold;
    if (labels[i].covered) ++covered;
    const bool pos = truth[i] == 1;
    if (pred && pos) ++tp;
    if (pred && !pos) ++fp;
    if (!pred && pos) ++fn;
    if (!pred && !pos) ++tn;
  }
  q.coverage = SafeDiv(static_cast<double>(covered),
                       static_cast<double>(labels.size()));
  q.precision = SafeDiv(static_cast<double>(tp), static_cast<double>(tp + fp));
  q.recall = SafeDiv(static_cast<double>(tp), static_cast<double>(tp + fn));
  q.f1 = F1(q.precision, q.recall);
  q.accuracy = SafeDiv(static_cast<double>(tp + tn),
                       static_cast<double>(labels.size()));
  return q;
}

}  // namespace crossmodal
