#include "resources/fault_injection.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "util/parse_number.h"
#include "util/random.h"

namespace crossmodal {

namespace {

/// Deterministic per-attempt fault stream: chains the service-level seed
/// through the entity id and the attempt index (offset so attempt 0 is not
/// the raw entity stream).
Rng AttemptRng(uint64_t service_seed, EntityId entity, int attempt) {
  const uint64_t entity_seed = DeriveSeed(service_seed, entity);
  return Rng(DeriveSeed(entity_seed, static_cast<uint64_t>(attempt) + 1));
}

}  // namespace

// ---- ServiceHealthCounters -------------------------------------------------

ServiceHealth ServiceHealthCounters::Snapshot(std::string service_name) const {
  ServiceHealth h;
  h.service = std::move(service_name);
  h.requests = requests.load(std::memory_order_relaxed);
  h.attempts = attempts.load(std::memory_order_relaxed);
  h.successes = successes.load(std::memory_order_relaxed);
  h.transient_failures = transient_failures.load(std::memory_order_relaxed);
  h.timeouts = timeouts.load(std::memory_order_relaxed);
  h.permanent_failures = permanent_failures.load(std::memory_order_relaxed);
  h.retries = retries.load(std::memory_order_relaxed);
  h.abstains_served = abstains_served.load(std::memory_order_relaxed);
  h.degraded_misses = degraded_misses.load(std::memory_order_relaxed);
  h.backoff_us = backoff_us.load(std::memory_order_relaxed);
  h.simulated_latency_us =
      simulated_latency_us.load(std::memory_order_relaxed);
  h.cache_hits = cache_hits.load(std::memory_order_relaxed);
  h.cache_misses = cache_misses.load(std::memory_order_relaxed);
  return h;
}

void ServiceHealthCounters::Reset() {
  for (auto* field :
       {&requests, &attempts, &successes, &transient_failures, &timeouts,
        &permanent_failures, &retries, &abstains_served, &degraded_misses,
        &backoff_us, &simulated_latency_us, &cache_hits, &cache_misses}) {
    field->store(0, std::memory_order_relaxed);
  }
}

// ---- FaultPlan -------------------------------------------------------------

const FaultPlan::Entry* FaultPlan::FindEntry(
    const std::string& service_name) const {
  const Entry* found = nullptr;
  for (const Entry& entry : entries) {
    if (entry.service == "*" || entry.service == service_name) {
      found = &entry;
    }
  }
  return found;
}

bool FaultPlan::IsScheduleDeterministic() const {
  return std::all_of(entries.begin(), entries.end(), [](const Entry& e) {
    return e.fault.down_after == 0 ||
           e.fault.down_after == ServiceFaultConfig::kNeverDown;
  });
}

const FaultPlan::Entry* FaultPlan::ServingEntry() const {
  const Entry* found = nullptr;
  for (const Entry& entry : entries) {
    if (entry.service == kServingFaultService) found = &entry;
  }
  return found;
}

FaultPlan FaultPlan::WithoutServing() const {
  FaultPlan plan;
  plan.seed = seed;
  for (const Entry& entry : entries) {
    if (entry.service != kServingFaultService) plan.entries.push_back(entry);
  }
  return plan;
}

const FaultPlan::Entry* FaultPlan::IoEntry() const {
  const Entry* found = nullptr;
  for (const Entry& entry : entries) {
    if (entry.service == kIoFaultService) found = &entry;
  }
  return found;
}

FaultPlan FaultPlan::WithoutReserved() const {
  FaultPlan plan;
  plan.seed = seed;
  for (const Entry& entry : entries) {
    if (entry.service != kServingFaultService &&
        entry.service != kIoFaultService) {
      plan.entries.push_back(entry);
    }
  }
  return plan;
}

IoFaultConfig IoFaultConfigFromPlan(const FaultPlan& plan) {
  IoFaultConfig config;
  const FaultPlan::Entry* entry = plan.IoEntry();
  if (entry == nullptr) return config;
  config.open_fail_rate = entry->fault.transient_rate;
  config.torn_write_rate = entry->fault.torn_write_rate;
  config.corrupt_rate = entry->fault.corrupt_rate;
  config.max_attempts = entry->retry.max_attempts;
  config.base_backoff_us = entry->retry.base_backoff_us;
  config.max_backoff_us = entry->retry.max_backoff_us;
  config.seed = DeriveSeed(plan.seed, kIoFaultService);
  return config;
}

namespace {

std::string Trim(const std::string& raw) {
  size_t begin = 0, end = raw.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(raw[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(raw[end - 1]))) {
    --end;
  }
  return raw.substr(begin, end - begin);
}

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

Status ApplyKeyValue(const std::string& kv, FaultPlan::Entry* entry) {
  const size_t eq = kv.find('=');
  const std::string key = Trim(eq == std::string::npos ? kv : kv.substr(0, eq));
  const std::string value =
      eq == std::string::npos ? "" : Trim(kv.substr(eq + 1));
  if (key == "down" && eq == std::string::npos) {
    entry->fault.down_after = 0;
    return Status::OK();
  }
  if (eq == std::string::npos) {
    return Status::InvalidArgument("fault plan: expected key=value, got '" +
                                   kv + "'");
  }
  if (key == "transient") {
    CM_ASSIGN_OR_RETURN(entry->fault.transient_rate, ParseFiniteDouble(value));
  } else if (key == "torn") {
    CM_ASSIGN_OR_RETURN(entry->fault.torn_write_rate,
                        ParseFiniteDouble(value));
  } else if (key == "corrupt") {
    CM_ASSIGN_OR_RETURN(entry->fault.corrupt_rate, ParseFiniteDouble(value));
  } else if (key == "timeout") {
    CM_ASSIGN_OR_RETURN(entry->fault.timeout_rate, ParseFiniteDouble(value));
  } else if (key == "latency_us") {
    CM_ASSIGN_OR_RETURN(entry->fault.latency_us, ParseUint64(value));
  } else if (key == "down_after") {
    CM_ASSIGN_OR_RETURN(entry->fault.down_after, ParseUint64(value));
  } else if (key == "attempts") {
    CM_ASSIGN_OR_RETURN(int64_t attempts, ParseInt64(value));
    if (attempts < 1) {
      return Status::InvalidArgument("fault plan: attempts must be >= 1");
    }
    entry->retry.max_attempts = static_cast<int>(attempts);
  } else if (key == "backoff_us") {
    CM_ASSIGN_OR_RETURN(entry->retry.base_backoff_us, ParseUint64(value));
  } else if (key == "max_backoff_us") {
    CM_ASSIGN_OR_RETURN(entry->retry.max_backoff_us, ParseUint64(value));
  } else {
    return Status::InvalidArgument("fault plan: unknown key '" + key + "'");
  }
  if (entry->fault.transient_rate < 0.0 || entry->fault.transient_rate > 1.0 ||
      entry->fault.timeout_rate < 0.0 || entry->fault.timeout_rate > 1.0 ||
      entry->fault.torn_write_rate < 0.0 ||
      entry->fault.torn_write_rate > 1.0 || entry->fault.corrupt_rate < 0.0 ||
      entry->fault.corrupt_rate > 1.0) {
    return Status::InvalidArgument(
        "fault plan: rates must be within [0, 1]");
  }
  return Status::OK();
}

}  // namespace

Result<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  if (Trim(spec).empty()) return plan;
  for (const std::string& raw : SplitOn(spec, ';')) {
    const std::string directive = Trim(raw);
    if (directive.empty()) continue;
    const size_t colon = directive.find(':');
    if (colon == std::string::npos) {
      // Global directive: currently only "seed=N".
      const size_t eq = directive.find('=');
      if (eq != std::string::npos && Trim(directive.substr(0, eq)) == "seed") {
        CM_ASSIGN_OR_RETURN(plan.seed,
                            ParseUint64(Trim(directive.substr(eq + 1))));
        continue;
      }
      return Status::InvalidArgument(
          "fault plan: expected 'service:key=value,...' or 'seed=N', got '" +
          directive + "'");
    }
    Entry entry;
    entry.service = Trim(directive.substr(0, colon));
    if (entry.service.empty()) {
      return Status::InvalidArgument("fault plan: empty service name in '" +
                                     directive + "'");
    }
    for (const std::string& kv : SplitOn(directive.substr(colon + 1), ',')) {
      if (Trim(kv).empty()) continue;
      CM_RETURN_IF_ERROR(ApplyKeyValue(Trim(kv), &entry));
    }
    plan.entries.push_back(std::move(entry));
  }
  return plan;
}

// ---- FaultInjectingService -------------------------------------------------

FaultInjectingService::FaultInjectingService(FeatureServicePtr inner,
                                             ServiceFaultConfig config,
                                             uint64_t fault_seed,
                                             ServiceHealthCounters* counters)
    : inner_(std::move(inner)),
      config_(config),
      service_seed_(DeriveSeed(fault_seed, inner_->name().c_str())),
      counters_(counters) {}

FeatureValue FaultInjectingService::Apply(const Entity& entity) const {
  Result<FeatureValue> v = Call(entity, 0);
  if (v.ok()) return std::move(*v);
  if (counters_) counters_->Add(counters_->degraded_misses);
  return FeatureValue::Missing();
}

Result<FeatureValue> FaultInjectingService::Call(const Entity& entity,
                                                 int attempt) const {
  if (counters_) counters_->Add(counters_->attempts);

  // Permanent outage. down_after == 0 is a hard outage (order-independent);
  // a mid-range threshold counts real arrivals, first attempts only.
  bool down = config_.down_after == 0;
  if (!down && config_.down_after != ServiceFaultConfig::kNeverDown) {
    const uint64_t arrival =
        attempt == 0 ? arrivals_.fetch_add(1, std::memory_order_relaxed)
                     : arrivals_.load(std::memory_order_relaxed) - 1;
    down = arrival >= config_.down_after;
  }
  if (down) {
    if (counters_) counters_->Add(counters_->permanent_failures);
    return Status::FailedPrecondition("service '" + name() +
                                      "' is permanently down");
  }

  Rng rng = AttemptRng(service_seed_, entity.id, attempt);
  if (config_.timeout_rate > 0.0 && rng.Bernoulli(config_.timeout_rate)) {
    if (counters_) counters_->Add(counters_->timeouts);
    return Status::DeadlineExceeded("service '" + name() + "' timed out");
  }
  if (config_.transient_rate > 0.0 && rng.Bernoulli(config_.transient_rate)) {
    if (counters_) counters_->Add(counters_->transient_failures);
    return Status::Unavailable("service '" + name() +
                               "' failed transiently");
  }

  CM_ASSIGN_OR_RETURN(FeatureValue value, inner_->Call(entity, attempt));
  if (counters_) {
    counters_->Add(counters_->successes);
    if (config_.latency_us > 0) {
      counters_->Add(counters_->simulated_latency_us, config_.latency_us);
    }
  }
  return value;
}

// ---- RetryingService -------------------------------------------------------

RetryingService::RetryingService(FeatureServicePtr inner, RetryPolicy policy,
                                 uint64_t fault_seed,
                                 ServiceHealthCounters* counters)
    : inner_(std::move(inner)),
      policy_(policy),
      retry_seed_(DeriveSeed(DeriveSeed(fault_seed, "retry"),
                             inner_->name().c_str())),
      counters_(counters) {}

FeatureValue RetryingService::Apply(const Entity& entity) const {
  Result<FeatureValue> v = Call(entity, 0);
  if (v.ok()) return std::move(*v);
  if (counters_) counters_->Add(counters_->degraded_misses);
  return FeatureValue::Missing();
}

Result<FeatureValue> RetryingService::Call(const Entity& entity,
                                           int attempt) const {
  const int budget = std::max(1, policy_.max_attempts);
  // Nested retry layers (attempt > 0) get disjoint inner attempt ranges so
  // their fault draws stay independent.
  const int base = attempt * budget;
  Status last = Status::Internal("retry loop did not run");
  for (int k = 0; k < budget; ++k) {
    Result<FeatureValue> v = inner_->Call(entity, base + k);
    if (v.ok()) return v;
    last = v.status();
    const StatusCode code = last.code();
    const bool retryable = code == StatusCode::kUnavailable ||
                           code == StatusCode::kDeadlineExceeded;
    if (!retryable || k + 1 >= budget) break;
    // Capped exponential backoff with deterministic jitter in [0.5, 1.0]x.
    const uint64_t uncapped =
        policy_.base_backoff_us * (1ULL << std::min(k, 32));
    const uint64_t capped = std::min(uncapped, policy_.max_backoff_us);
    Rng rng(DeriveSeed(DeriveSeed(retry_seed_, entity.id),
                       static_cast<uint64_t>(base + k) + 1));
    const uint64_t backoff = capped / 2 + rng.UniformInt(capped / 2 + 1);
    if (counters_) {
      counters_->Add(counters_->retries);
      counters_->Add(counters_->backoff_us, backoff);
    }
  }
  return last;
}

// ---- ServingFaultHook ------------------------------------------------------

ServingFaultHook::ServingFaultHook(const FaultPlan::Entry& entry,
                                   uint64_t plan_seed,
                                   ServiceHealthCounters* counters)
    : active_(true),
      config_(entry.fault),
      retry_(entry.retry),
      serving_seed_(DeriveSeed(plan_seed, kServingFaultService)),
      retry_seed_(DeriveSeed(DeriveSeed(plan_seed, "retry"),
                             kServingFaultService)),
      counters_(counters) {}

ServingFaultHook ServingFaultHook::FromPlan(const FaultPlan& plan,
                                            ServiceHealthCounters* counters) {
  const FaultPlan::Entry* entry = plan.ServingEntry();
  if (entry == nullptr) return ServingFaultHook();
  return ServingFaultHook(*entry, plan.seed, counters);
}

Status ServingFaultHook::Probe(EntityId entity, int attempt) const {
  if (!active_) return Status::OK();
  if (counters_) counters_->Add(counters_->attempts);
  // Mid-range down_after is order-sensitive and rejected by the serving
  // tier at construction, so only the hard outage is modeled here.
  if (config_.down_after == 0) {
    if (counters_) counters_->Add(counters_->permanent_failures);
    return Status::FailedPrecondition("serving tier is permanently down");
  }
  Rng rng = AttemptRng(serving_seed_, entity, attempt);
  if (config_.timeout_rate > 0.0 && rng.Bernoulli(config_.timeout_rate)) {
    if (counters_) counters_->Add(counters_->timeouts);
    return Status::DeadlineExceeded("serving request timed out");
  }
  if (config_.transient_rate > 0.0 && rng.Bernoulli(config_.transient_rate)) {
    if (counters_) counters_->Add(counters_->transient_failures);
    return Status::Unavailable("serving request failed transiently");
  }
  if (counters_) {
    counters_->Add(counters_->successes);
    if (config_.latency_us > 0) {
      counters_->Add(counters_->simulated_latency_us, config_.latency_us);
    }
  }
  return Status::OK();
}

uint64_t ServingFaultHook::AccountRetryBackoff(EntityId entity,
                                               int attempt) const {
  if (!active_) return 0;
  // Same capped-exponential-with-jitter shape as RetryingService, keyed by
  // the serving retry stream.
  const uint64_t uncapped =
      retry_.base_backoff_us * (1ULL << std::min(attempt, 32));
  const uint64_t capped = std::min(uncapped, retry_.max_backoff_us);
  Rng rng(DeriveSeed(DeriveSeed(retry_seed_, entity),
                     static_cast<uint64_t>(attempt) + 1));
  const uint64_t backoff = capped / 2 + rng.UniformInt(capped / 2 + 1);
  if (counters_) {
    counters_->Add(counters_->retries);
    counters_->Add(counters_->backoff_us, backoff);
  }
  return backoff;
}

}  // namespace crossmodal
