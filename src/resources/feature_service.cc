#include "resources/feature_service.h"

namespace crossmodal {

const char* ResourceKindName(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kModelBasedService:
      return "model-based service";
    case ResourceKind::kAggregateStatistic:
      return "aggregate statistic";
    case ResourceKind::kRuleBasedService:
      return "rule-based service";
    case ResourceKind::kPretrainedEmbedding:
      return "pre-trained embedding";
  }
  return "?";
}

}  // namespace crossmodal
