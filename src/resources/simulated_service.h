// SimulatedService: common machinery for the simulated resource library.

#ifndef CROSSMODAL_RESOURCES_SIMULATED_SERVICE_H_
#define CROSSMODAL_RESOURCES_SIMULATED_SERVICE_H_

#include <utility>

#include "resources/feature_service.h"
#include "resources/noise.h"

namespace crossmodal {

/// Base class for simulated services: handles modality applicability,
/// per-entity deterministic seeding, and noise-profile selection; concrete
/// services implement Observe() over the entity's latents.
class SimulatedService : public FeatureService {
 public:
  SimulatedService(FeatureDef def, ResourceKind kind, uint64_t seed,
                   ModalityNoise noise)
      : def_(std::move(def)),
        kind_(kind),
        seed_(DeriveSeed(seed, def_.name.c_str())),
        noise_(noise) {}

  const FeatureDef& output_def() const override { return def_; }
  ResourceKind kind() const override { return kind_; }

  FeatureValue Apply(const Entity& entity) const final {
    if (!AppliesTo(entity.modality)) return FeatureValue::Missing();
    Rng rng = ServiceRng(seed_, entity.id);
    return Observe(entity, noise_.For(entity.modality), &rng);
  }

 protected:
  /// Computes the noisy observation; `rng` is deterministic per
  /// (service, entity).
  virtual FeatureValue Observe(const Entity& entity,
                               const ChannelNoise& noise, Rng* rng) const = 0;

 private:
  FeatureDef def_;
  ResourceKind kind_;
  uint64_t seed_;
  ModalityNoise noise_;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_RESOURCES_SIMULATED_SERVICE_H_
