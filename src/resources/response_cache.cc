#include "resources/response_cache.h"

#include "util/logging.h"

namespace crossmodal {

ResponseCache::ResponseCache(size_t capacity) : capacity_(capacity) {
  CM_CHECK(capacity_ > 0);
}

bool ResponseCache::Lookup(FeatureId service, EntityId entity,
                           FeatureValue* out) {
  const Key key{service, entity};
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  // Move to the front (most recently used); iterators stay valid.
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  *out = it->second->second;
  return true;
}

void ResponseCache::Insert(FeatureId service, EntityId entity,
                           FeatureValue value) {
  const Key key{service, entity};
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->second = std::move(value);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.emplace_front(key, std::move(value));
  index_.emplace(key, lru_.begin());
}

ResponseCacheStats ResponseCache::Stats() const {
  MutexLock lock(&mu_);
  ResponseCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.entries = lru_.size();
  stats.capacity = capacity_;
  return stats;
}

CachingService::CachingService(FeatureServicePtr inner, FeatureId service_id,
                               ResponseCache* cache,
                               ServiceHealthCounters* counters)
    : inner_(std::move(inner)),
      service_id_(service_id),
      cache_(cache),
      counters_(counters) {}

FeatureValue CachingService::Apply(const Entity& entity) const {
  Result<FeatureValue> v = Call(entity, 0);
  if (v.ok()) return std::move(*v);
  if (counters_) counters_->Add(counters_->degraded_misses);
  return FeatureValue::Missing();
}

Result<FeatureValue> CachingService::Call(const Entity& entity,
                                          int attempt) const {
  // Only first attempts consult the cache: retries exist to re-draw the
  // fault schedule, which a cached answer would skip.
  if (attempt == 0) {
    FeatureValue cached;
    if (cache_->Lookup(service_id_, entity.id, &cached)) {
      if (counters_) counters_->Add(counters_->cache_hits);
      return cached;
    }
  }
  Result<FeatureValue> v = inner_->Call(entity, attempt);
  if (attempt == 0) {
    if (counters_) counters_->Add(counters_->cache_misses);
    // Failures are never cached: the next request must re-exercise the
    // retry/fault machinery rather than replay a stale error.
    if (v.ok()) cache_->Insert(service_id_, entity.id, *v);
  }
  return v;
}

}  // namespace crossmodal
