#include "resources/topic_services.h"

namespace crossmodal {

TopicPrimaryService::TopicPrimaryService(const WorldConfig& world,
                                         uint64_t seed, ModalityNoise noise)
    : SimulatedService(
          FeatureDef{.name = "topic_primary",
                     .type = FeatureType::kCategorical,
                     .set = ServiceSet::kC,
                     .cardinality = world.num_topics,
                     .modalities = kAllModalities,
                     .servable = true},
          ResourceKind::kModelBasedService, seed, noise),
      vocab_(world.num_topics) {}

FeatureValue TopicPrimaryService::Observe(const Entity& entity,
                                          const ChannelNoise& noise,
                                          Rng* rng) const {
  return NoisyCategorical(entity.latent.topic, vocab_, noise, rng);
}

TopicSecondaryService::TopicSecondaryService(const WorldConfig& world,
                                             uint64_t seed,
                                             ModalityNoise noise)
    : SimulatedService(
          FeatureDef{.name = "topic_secondary",
                     .type = FeatureType::kCategorical,
                     .set = ServiceSet::kC,
                     .cardinality = world.num_topics,
                     .modalities = kAllModalities,
                     .servable = true},
          ResourceKind::kModelBasedService, seed, noise),
      vocab_(world.num_topics) {}

FeatureValue TopicSecondaryService::Observe(const Entity& entity,
                                            const ChannelNoise& noise,
                                            Rng* rng) const {
  // Tail assignments: neighbors of the true topic in a fixed topic ring.
  std::vector<int32_t> secondary;
  const int32_t t = entity.latent.topic;
  if (rng->Bernoulli(0.8)) secondary.push_back((t + 1) % vocab_);
  if (rng->Bernoulli(0.5)) secondary.push_back((t + vocab_ - 1) % vocab_);
  return NoisyCategorical(secondary, vocab_, noise, rng);
}

ContentCategoryService::ContentCategoryService(const WorldConfig& world,
                                               uint64_t seed,
                                               ModalityNoise noise)
    : SimulatedService(
          FeatureDef{.name = "content_category",
                     .type = FeatureType::kCategorical,
                     .set = ServiceSet::kC,
                     .cardinality = (world.num_topics + 3) / 4,
                     .modalities = kAllModalities,
                     .servable = true},
          ResourceKind::kModelBasedService, seed, noise),
      topic_vocab_(world.num_topics),
      vocab_((world.num_topics + 3) / 4) {}

FeatureValue ContentCategoryService::Observe(const Entity& entity,
                                             const ChannelNoise& noise,
                                             Rng* rng) const {
  (void)topic_vocab_;
  const int32_t coarse = entity.latent.topic / 4;
  return NoisyCategorical(coarse, vocab_, noise, rng);
}

SentimentService::SentimentService(const WorldConfig& world, uint64_t seed,
                                   ModalityNoise noise)
    : SimulatedService(
          FeatureDef{.name = "sentiment",
                     .type = FeatureType::kCategorical,
                     .set = ServiceSet::kC,
                     .cardinality = world.num_sentiments,
                     .modalities = kAllModalities,
                     .servable = true},
          ResourceKind::kModelBasedService, seed, noise) {}

FeatureValue SentimentService::Observe(const Entity& entity,
                                       const ChannelNoise& noise,
                                       Rng* rng) const {
  return NoisyCategorical(entity.latent.sentiment, 3, noise, rng);
}

SettingService::SettingService(const WorldConfig& world, uint64_t seed,
                               ModalityNoise noise)
    : SimulatedService(
          FeatureDef{.name = "setting",
                     .type = FeatureType::kCategorical,
                     .set = ServiceSet::kC,
                     .cardinality = world.num_settings,
                     .modalities = kAllModalities,
                     .servable = true},
          ResourceKind::kModelBasedService, seed, noise),
      vocab_(world.num_settings) {}

FeatureValue SettingService::Observe(const Entity& entity,
                                     const ChannelNoise& noise,
                                     Rng* rng) const {
  return NoisyCategorical(entity.latent.setting, vocab_, noise, rng);
}

}  // namespace crossmodal
