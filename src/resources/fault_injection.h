// Deterministic fault injection and retry/backoff for organizational
// services.
//
// The paper's feature space is assembled from *other teams'* services
// (§3.1), and in production those services flake, time out, get deprecated,
// or return partial results (the unreliable organizational infrastructure
// Snorkel DryBell stresses). This layer simulates that failure surface
// while keeping the repo's determinism contract:
//
//   * FaultInjectingService wraps any FeatureService and injects transient
//     failures, deadline timeouts, simulated latency, and permanent outages.
//     Every fault decision is a pure function of
//     (fault seed, service name, entity id, attempt index) via the
//     DeriveSeed chain, so a faulty run is bit-reproducible across runs and
//     thread counts — cmaudit audits the pipeline *with* faults enabled.
//   * RetryingService layers capped deterministic exponential backoff with
//     jitter and a per-service retry budget on top; transient faults
//     (Unavailable / DeadlineExceeded) are retried, permanent outages
//     (FailedPrecondition) are not.
//   * When the budget is exhausted the service degrades gracefully: Apply()
//     records a missing value, feature generation leaves the slot empty,
//     LFs over the feature abstain, and the pipeline reports per-service
//     degradation stats instead of aborting.
//
// The one knob that is *not* order-independent is a mid-range permanent
// outage (0 < down_after < kNeverDown): which entities hit the outage
// depends on request arrival order, so it is only deterministic under
// serial feature generation. down_after == 0 (hard down) and the rate-based
// faults are safe under any parallelism; FaultPlan::IsScheduleDeterministic
// tells the determinism harness which plans are auditable.

#ifndef CROSSMODAL_RESOURCES_FAULT_INJECTION_H_
#define CROSSMODAL_RESOURCES_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "io/io_faults.h"
#include "resources/feature_service.h"
#include "util/result.h"

namespace crossmodal {

/// Fault profile of one upstream service.
struct ServiceFaultConfig {
  /// Sentinel: the service never goes permanently down.
  static constexpr uint64_t kNeverDown = std::numeric_limits<uint64_t>::max();

  /// P(one attempt fails with Unavailable), drawn deterministically per
  /// (fault seed, service, entity, attempt).
  double transient_rate = 0.0;
  /// P(one attempt fails with DeadlineExceeded), drawn the same way.
  double timeout_rate = 0.0;
  /// Simulated upstream latency added to the health stats per successful
  /// call (no real sleeping; wall time stays test-friendly).
  uint64_t latency_us = 0;
  /// Permanent outage after this many requests: 0 = down from the first
  /// call (deterministic under any parallelism), kNeverDown = disabled.
  /// Mid-range values count real arrivals and are order-sensitive — see the
  /// file comment.
  uint64_t down_after = kNeverDown;
  /// P(one write attempt tears). Meaningful only on the reserved `io:`
  /// target (see kIoFaultService); feature services ignore it.
  double torn_write_rate = 0.0;
  /// P(a surviving write silently flips one byte). `io:` target only.
  double corrupt_rate = 0.0;
};

/// Retry/backoff policy layered over a faulty service.
struct RetryPolicy {
  /// Total tries per logical request (1 = no retries).
  int max_attempts = 3;
  /// Backoff before retry k is min(base << k, max) scaled by a
  /// deterministic jitter in [0.5, 1.0]; accumulated in the health stats,
  /// never actually slept.
  uint64_t base_backoff_us = 1000;
  uint64_t max_backoff_us = 50000;
};

/// Point-in-time health snapshot of one service (see ServiceHealthCounters
/// for field semantics).
struct ServiceHealth {
  std::string service;
  uint64_t requests = 0;
  uint64_t attempts = 0;
  uint64_t successes = 0;
  uint64_t transient_failures = 0;
  uint64_t timeouts = 0;
  uint64_t permanent_failures = 0;
  uint64_t retries = 0;
  uint64_t abstains_served = 0;
  uint64_t degraded_misses = 0;
  uint64_t backoff_us = 0;
  uint64_t simulated_latency_us = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  /// True if the service ever served a degraded (fault-exhausted) miss or a
  /// permanent failure.
  bool degraded() const {
    return degraded_misses > 0 || permanent_failures > 0;
  }
};

/// Lock-free per-service health counters, shared between the registry and
/// the fault/retry decorators wrapping that service. All increments are
/// relaxed: each field is an independent statistic, and every count is a sum
/// of per-entity deterministic contributions, so totals are
/// schedule-independent whenever the underlying fault plan is.
class ServiceHealthCounters {
 public:
  ServiceHealthCounters() = default;
  ServiceHealthCounters(const ServiceHealthCounters&) = delete;
  ServiceHealthCounters& operator=(const ServiceHealthCounters&) = delete;

  /// Top-level applications routed through the registry.
  std::atomic<uint64_t> requests{0};
  /// Individual tries, including retries.
  std::atomic<uint64_t> attempts{0};
  std::atomic<uint64_t> successes{0};
  std::atomic<uint64_t> transient_failures{0};
  std::atomic<uint64_t> timeouts{0};
  std::atomic<uint64_t> permanent_failures{0};
  /// Retries issued by a RetryingService after a transient failure.
  std::atomic<uint64_t> retries{0};
  /// Requests answered with a (genuine) abstention.
  std::atomic<uint64_t> abstains_served{0};
  /// Requests where the retry budget ran out and a missing value was
  /// recorded instead — the degraded-mode contract.
  std::atomic<uint64_t> degraded_misses{0};
  /// Total deterministic backoff the retry layer would have waited.
  std::atomic<uint64_t> backoff_us{0};
  /// Total simulated upstream latency of successful calls.
  std::atomic<uint64_t> simulated_latency_us{0};
  /// Requests answered straight from the response cache / forwarded past it
  /// (resources/response_cache.h; both zero with no cache installed).
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};

  void Add(std::atomic<uint64_t>& field, uint64_t n = 1) {
    field.fetch_add(n, std::memory_order_relaxed);
  }

  /// Copies the counters into a plain snapshot.
  ServiceHealth Snapshot(std::string service_name) const;

  /// Zeroes every counter (e.g. between benchmark arms).
  void Reset();
};

/// Reserved FaultPlan target naming the serving tier (ShardedServer's
/// request path) instead of a registry feature service. Only an *exact*
/// `serving:` entry reaches the serving hook — the `*` wildcard keeps its
/// original meaning of "every feature service" so existing plans do not
/// silently start faulting the serving path.
inline constexpr char kServingFaultService[] = "serving";

/// Reserved FaultPlan target naming the artifact IO layer (io/io_faults.h)
/// instead of a registry feature service. Exact-match only, like `serving:`;
/// supports the extra keys `torn=` (torn-write rate) and `corrupt=` (silent
/// byte-flip rate) alongside `transient=` (open-failure rate) and the
/// retry/backoff keys.
inline constexpr char kIoFaultService[] = "io";

/// Which services a fault campaign hits and how. Parsed from the
/// `--fault-plan` CLI spec:
///
///   plan    := directive (';' directive)*
///   directive := "seed=" U64 | service ':' kv (',' kv)*
///   service := service name | '*'            (matches every service)
///   kv      := "transient=" F | "timeout=" F | "latency_us=" U64
///            | "down_after=" U64 | "down"    (down_after=0, hard outage)
///            | "attempts=" INT | "backoff_us=" U64 | "max_backoff_us=" U64
///            | "torn=" F | "corrupt=" F      (io: target only)
///
/// e.g. "*:transient=0.1;topic_primary:down;kg_entities:timeout=0.3,attempts=4".
/// For each service the *last* matching entry wins. Two reserved service
/// names address non-registry targets: "serving" (the serving tier, see
/// kServingFaultService) and "io" (the artifact IO layer, see
/// kIoFaultService). Neither is matched by "*". Pass WithoutReserved() to
/// ResourceRegistry::InstallFaultLayer — the registry would reject either
/// reserved name as an unknown service.
struct FaultPlan {
  struct Entry {
    std::string service;  ///< Exact service name, or "*" for all.
    ServiceFaultConfig fault;
    RetryPolicy retry;
  };

  /// Root of the deterministic fault schedule; every decorator derives its
  /// stream as DeriveSeed(DeriveSeed(seed, service name), entity, attempt).
  uint64_t seed = 0xFA17;
  std::vector<Entry> entries;

  bool empty() const { return entries.empty(); }

  /// Last entry matching `service_name` (exact match beats nothing; "*"
  /// matches everything), or nullptr.
  const Entry* FindEntry(const std::string& service_name) const;

  /// True when every fault decision is a pure function of
  /// (seed, service, entity, attempt) — i.e. no entry uses a mid-range
  /// down_after counter. Only such plans may be used under parallel feature
  /// generation / the determinism audit.
  bool IsScheduleDeterministic() const;

  /// Last entry whose service is exactly kServingFaultService, or nullptr.
  /// (The "*" wildcard does not reach the serving tier.)
  const Entry* ServingEntry() const;

  /// The plan minus every serving-tier entry: what the feature-service
  /// registry should install (it would reject the reserved name as an
  /// unknown service).
  FaultPlan WithoutServing() const;

  /// Last entry whose service is exactly kIoFaultService, or nullptr.
  /// (The "*" wildcard does not reach the IO layer.)
  const Entry* IoEntry() const;

  /// The plan minus every reserved-target entry (serving + io): what the
  /// feature-service registry should install.
  FaultPlan WithoutReserved() const;

  /// Parses the CLI spec above; an empty string yields an empty plan.
  [[nodiscard]] static Result<FaultPlan> Parse(const std::string& spec);
};

/// Maps a plan's `io:` entry onto the IO layer's fault config
/// (io/io_faults.h): transient= becomes the open-failure rate, torn= /
/// corrupt= map directly, the retry keys set the IO retry budget, and the
/// injector seed derives from the plan seed. A plan without an io entry
/// yields the all-zero-rate default.
IoFaultConfig IoFaultConfigFromPlan(const FaultPlan& plan);

/// Decorator injecting deterministic faults into an upstream service.
class FaultInjectingService : public FeatureService {
 public:
  /// `counters` may be null (no stats recorded); when provided it must
  /// outlive the service.
  FaultInjectingService(FeatureServicePtr inner, ServiceFaultConfig config,
                        uint64_t fault_seed,
                        ServiceHealthCounters* counters = nullptr);

  const FeatureDef& output_def() const override {
    return inner_->output_def();
  }
  ResourceKind kind() const override { return inner_->kind(); }

  /// Degrades failures to a missing value (LFs abstain downstream).
  FeatureValue Apply(const Entity& entity) const override;

  using FeatureService::Call;
  [[nodiscard]] Result<FeatureValue> Call(const Entity& entity,
                                          int attempt) const override;

 private:
  FeatureServicePtr inner_;
  ServiceFaultConfig config_;
  uint64_t service_seed_;  // DeriveSeed(fault_seed, service name)
  ServiceHealthCounters* counters_;
  /// Arrival counter for mid-range down_after (order-sensitive by design).
  mutable std::atomic<uint64_t> arrivals_{0};
};

/// Decorator retrying transient failures with capped deterministic
/// exponential backoff.
class RetryingService : public FeatureService {
 public:
  RetryingService(FeatureServicePtr inner, RetryPolicy policy,
                  uint64_t fault_seed,
                  ServiceHealthCounters* counters = nullptr);

  const FeatureDef& output_def() const override {
    return inner_->output_def();
  }
  ResourceKind kind() const override { return inner_->kind(); }

  /// Degrades an exhausted retry budget to a missing value.
  FeatureValue Apply(const Entity& entity) const override;

  using FeatureService::Call;
  [[nodiscard]] Result<FeatureValue> Call(const Entity& entity,
                                          int attempt) const override;

 private:
  FeatureServicePtr inner_;
  RetryPolicy policy_;
  uint64_t retry_seed_;  // DeriveSeed(fault_seed, "retry/<service name>")
  ServiceHealthCounters* counters_;
};

/// Deterministic fault source for the serving tier (the ROADMAP's "extend
/// injection to the serving path" item). Unlike the service decorators it
/// wraps no upstream: the serving tier probes it before scoring a request,
/// retries transient verdicts with the entry's RetryPolicy (backoff
/// accounted, never slept), and sheds the request when the budget runs out.
/// Every verdict is a pure function of (plan seed, entity id, attempt), so
/// which requests fail is independent of shard count, batch boundaries, and
/// thread interleaving — the determinism audit runs with the hook active.
class ServingFaultHook {
 public:
  /// Inactive hook: Probe always returns OK.
  ServingFaultHook() = default;

  /// Hook configured from a plan's serving entry (see
  /// FaultPlan::ServingEntry). `counters` may be null; when provided it must
  /// outlive the hook and records attempts/faults/retries/backoff.
  ServingFaultHook(const FaultPlan::Entry& entry, uint64_t plan_seed,
                   ServiceHealthCounters* counters);

  /// Builds the hook from `plan`'s serving entry; a plan without one yields
  /// an inactive hook.
  static ServingFaultHook FromPlan(const FaultPlan& plan,
                                   ServiceHealthCounters* counters);

  /// True when a serving entry configured this hook.
  bool active() const { return active_; }

  /// Retry policy of the configuring entry (meaningful only when active).
  const RetryPolicy& retry() const { return retry_; }

  /// Deterministic verdict for one attempt of one request: OK, Unavailable,
  /// DeadlineExceeded, or FailedPrecondition (hard outage).
  [[nodiscard]] Status Probe(EntityId entity, int attempt) const;

  /// Accounts the deterministic backoff before retry `attempt + 1` and
  /// returns it in microseconds (recorded, never slept).
  uint64_t AccountRetryBackoff(EntityId entity, int attempt) const;

 private:
  bool active_ = false;
  ServiceFaultConfig config_;
  RetryPolicy retry_;
  uint64_t serving_seed_ = 0;  // DeriveSeed(plan seed, "serving")
  uint64_t retry_seed_ = 0;    // DeriveSeed(DeriveSeed(plan seed, "retry"), "serving")
  ServiceHealthCounters* counters_ = nullptr;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_RESOURCES_FAULT_INJECTION_H_
