// Noisy observation channels for simulated services.
//
// A real organizational resource observes an entity's latent semantics
// imperfectly, and its reliability depends on the modality (an org's text
// topic model is usually more mature than its image one). ChannelNoise
// captures that as per-application drop / confusion / spurious-output /
// abstention rates; all draws are deterministic in (seed, entity id).

#ifndef CROSSMODAL_RESOURCES_NOISE_H_
#define CROSSMODAL_RESOURCES_NOISE_H_

#include <cstdint>
#include <vector>

#include "features/feature_value.h"
#include "features/modality.h"
#include "util/random.h"

namespace crossmodal {

/// Error rates of one service on one modality.
struct ChannelNoise {
  double drop_rate = 0.0;     ///< P(a true category is not reported).
  double confuse_rate = 0.0;  ///< P(a reported category is randomized).
  double spurious_rate = 0.0; ///< P(an extra random category is added).
  double missing_rate = 0.0;  ///< P(the service abstains entirely).

  /// Scales all error rates by `f` (clamped to [0, 0.95]).
  ChannelNoise Scaled(double f) const;
};

/// Noise profile of a service across modalities.
struct ModalityNoise {
  ChannelNoise text;
  ChannelNoise image;
  ChannelNoise video;

  const ChannelNoise& For(Modality m) const;

  /// A profile where image/video channels are `image_factor` times noisier
  /// than the text channel.
  static ModalityNoise Uniform(const ChannelNoise& base,
                               double image_factor = 1.0);
};

/// Deterministic RNG for one (service, entity) application.
Rng ServiceRng(uint64_t service_seed, uint64_t entity_id);

/// Passes a set of true categories through the channel: drops, confusions,
/// spurious additions, or full abstention (missing value).
FeatureValue NoisyCategorical(const std::vector<int32_t>& truth,
                              int32_t vocab, const ChannelNoise& noise,
                              Rng* rng);

/// Single-category convenience overload.
FeatureValue NoisyCategorical(int32_t truth, int32_t vocab,
                              const ChannelNoise& noise, Rng* rng);

/// Passes a numeric truth through the channel: abstention or additive
/// Gaussian noise of scale `sigma`.
FeatureValue NoisyNumeric(double truth, double sigma,
                          const ChannelNoise& noise, Rng* rng);

}  // namespace crossmodal

#endif  // CROSSMODAL_RESOURCES_NOISE_H_
