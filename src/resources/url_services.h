// Service set A: URL-based metadata services (§6.2).

#ifndef CROSSMODAL_RESOURCES_URL_SERVICES_H_
#define CROSSMODAL_RESOURCES_URL_SERVICES_H_

#include "resources/simulated_service.h"
#include "synth/world_config.h"

namespace crossmodal {

/// Categorizes the URL a post links to (model-based service).
class UrlCategoryService : public SimulatedService {
 public:
  UrlCategoryService(const WorldConfig& world, uint64_t seed,
                     ModalityNoise noise);

 protected:
  FeatureValue Observe(const Entity& entity, const ChannelNoise& noise,
                       Rng* rng) const override;

 private:
  int32_t vocab_;
};

/// Buckets the linked domain's reputation into 4 tiers (aggregate statistic
/// joined on the URL metadata field).
class DomainReputationService : public SimulatedService {
 public:
  explicit DomainReputationService(uint64_t seed, ModalityNoise noise);

 protected:
  FeatureValue Observe(const Entity& entity, const ChannelNoise& noise,
                       Rng* rng) const override;
};

/// How fast the post is being shared (aggregate statistic; numeric).
class ShareVelocityService : public SimulatedService {
 public:
  explicit ShareVelocityService(uint64_t seed, ModalityNoise noise);

 protected:
  FeatureValue Observe(const Entity& entity, const ChannelNoise& noise,
                       Rng* rng) const override;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_RESOURCES_URL_SERVICES_H_
