#include "resources/embedding_services.h"

#include <cmath>

namespace crossmodal {

namespace {
FeatureDef EmbeddingDef(const std::string& name, int dim) {
  return FeatureDef{.name = name,
                    .type = FeatureType::kEmbedding,
                    .set = ServiceSet::kImage,
                    .cardinality = dim,
                    .modalities = kImageMask | kVideoMask,
                    .servable = true};
}
}  // namespace

ImageEmbeddingService::ImageEmbeddingService(const WorldConfig& world,
                                             std::string name, uint64_t seed,
                                             double noise_sigma,
                                             int semantic_rank)
    : SimulatedService(EmbeddingDef(name, world.embedding_dim),
                       ResourceKind::kPretrainedEmbedding, seed,
                       ModalityNoise{}),
      noise_sigma_(noise_sigma),
      semantic_rank_(std::min(semantic_rank, world.semantic_dim)),
      out_dim_(world.embedding_dim) {
  Rng rng(DeriveSeed(seed, name.c_str()));
  projection_.resize(static_cast<size_t>(out_dim_));
  for (auto& row : projection_) {
    row.resize(static_cast<size_t>(world.semantic_dim));
    for (auto& v : row) {
      v = static_cast<float>(rng.Normal(0.0, 1.0 / std::sqrt(
                                                   world.semantic_dim)));
    }
  }
}

std::unique_ptr<ImageEmbeddingService> ImageEmbeddingService::Proprietary(
    const WorldConfig& world, uint64_t seed) {
  return std::make_unique<ImageEmbeddingService>(
      world, "proprietary_embedding", seed, /*noise_sigma=*/0.12,
      /*semantic_rank=*/world.semantic_dim);
}

std::unique_ptr<ImageEmbeddingService> ImageEmbeddingService::Generic(
    const WorldConfig& world, uint64_t seed) {
  return std::make_unique<ImageEmbeddingService>(
      world, "generic_embedding", seed, /*noise_sigma=*/0.30,
      /*semantic_rank=*/(world.semantic_dim * 2) / 3);
}

FeatureValue ImageEmbeddingService::Observe(const Entity& entity,
                                            const ChannelNoise& /*noise*/,
                                            Rng* rng) const {
  std::vector<float> out(static_cast<size_t>(out_dim_), 0.0f);
  const auto& s = entity.latent.semantic;
  for (int i = 0; i < out_dim_; ++i) {
    double acc = 0.0;
    for (int j = 0; j < semantic_rank_ && j < static_cast<int>(s.size());
         ++j) {
      acc += static_cast<double>(projection_[static_cast<size_t>(i)]
                                            [static_cast<size_t>(j)]) *
             s[static_cast<size_t>(j)];
    }
    out[static_cast<size_t>(i)] =
        static_cast<float>(acc + rng->Normal(0.0, noise_sigma_));
  }
  return FeatureValue::Embedding(std::move(out));
}

ImageQualityService::ImageQualityService(uint64_t seed)
    : SimulatedService(
          FeatureDef{.name = "image_quality",
                     .type = FeatureType::kNumeric,
                     .set = ServiceSet::kImage,
                     .cardinality = 0,
                     .modalities = kImageMask | kVideoMask,
                     .servable = true},
          ResourceKind::kModelBasedService, seed, ModalityNoise{}) {}

FeatureValue ImageQualityService::Observe(const Entity& entity,
                                          const ChannelNoise& /*noise*/,
                                          Rng* rng) const {
  // Slight correlation with intensity (blatant content is often reposted,
  // recompressed screenshots).
  const double quality = 0.7 - 0.1 * entity.latent.intensity +
                         rng->Normal(0.0, 0.15);
  return FeatureValue::Numeric(quality);
}

}  // namespace crossmodal
