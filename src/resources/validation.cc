#include "resources/validation.h"

#include <algorithm>
#include <map>

#include "util/logging.h"
#include "util/random.h"

namespace crossmodal {

namespace {

double SafeDiv(double a, double b) { return b > 0.0 ? a / b : 0.0; }

/// Best order-1 item quality for one feature over labeled rows
/// (self-contained so the resources layer does not depend on the miner).
void BestItemQuality(const FeatureStore& store, FeatureId feature,
                     FeatureType type, const std::vector<EntityId>& entities,
                     const std::vector<int>& labels, double* best_f1,
                     double* best_precision, double* worst_precision) {
  *best_f1 = 0.0;
  *best_precision = 0.0;
  *worst_precision = 1.0;
  size_t n_pos = 0;
  for (int y : labels) n_pos += (y == 1);
  if (n_pos == 0) return;

  if (type == FeatureType::kCategorical) {
    std::map<int32_t, std::pair<size_t, size_t>> counts;  // cat -> (pos,neg)
    for (size_t i = 0; i < entities.size(); ++i) {
      auto row = store.Get(entities[i]);
      if (!row.ok()) continue;
      const FeatureValue& v = (*row)->Get(feature);
      if (v.is_missing() || v.type() != FeatureType::kCategorical) continue;
      for (int32_t c : v.categories()) {
        auto& cnt = counts[c];
        (labels[i] == 1 ? cnt.first : cnt.second)++;
      }
    }
    for (const auto& [cat, cnt] : counts) {
      const size_t total = cnt.first + cnt.second;
      if (total < 10) continue;  // too rare to judge
      const double precision = SafeDiv(cnt.first, total);
      const double recall = SafeDiv(cnt.first, n_pos);
      const double f1 = SafeDiv(2 * precision * recall, precision + recall);
      *best_f1 = std::max(*best_f1, f1);
      *best_precision = std::max(*best_precision, precision);
      *worst_precision = std::min(*worst_precision, precision);
    }
  } else if (type == FeatureType::kNumeric) {
    std::vector<std::pair<double, int>> values;
    for (size_t i = 0; i < entities.size(); ++i) {
      auto row = store.Get(entities[i]);
      if (!row.ok()) continue;
      const FeatureValue& v = (*row)->Get(feature);
      if (v.is_missing() || v.type() != FeatureType::kNumeric) continue;
      values.emplace_back(v.numeric(), labels[i]);
    }
    if (values.size() < 20) return;
    std::sort(values.begin(), values.end());
    // Evaluate quartile buckets as items.
    for (int b = 0; b < 4; ++b) {
      const size_t lo = values.size() * b / 4;
      const size_t hi = values.size() * (b + 1) / 4;
      size_t pos = 0;
      for (size_t k = lo; k < hi; ++k) pos += (values[k].second == 1);
      const double precision = SafeDiv(pos, hi - lo);
      const double recall = SafeDiv(pos, n_pos);
      const double f1 = SafeDiv(2 * precision * recall, precision + recall);
      *best_f1 = std::max(*best_f1, f1);
      *best_precision = std::max(*best_precision, precision);
      *worst_precision = std::min(*worst_precision, precision);
    }
  }
}

/// L1 distance between normalized category histograms of two entity sets.
double MarginalShift(const FeatureStore& store, FeatureId feature,
                     const std::vector<EntityId>& old_entities,
                     const std::vector<EntityId>& new_entities) {
  std::map<int32_t, double> hist_old, hist_new;
  double n_old = 0.0, n_new = 0.0;
  auto accumulate = [&](const std::vector<EntityId>& entities,
                        std::map<int32_t, double>* hist, double* n) {
    for (EntityId id : entities) {
      auto row = store.Get(id);
      if (!row.ok()) continue;
      const FeatureValue& v = (*row)->Get(feature);
      if (v.is_missing() || v.type() != FeatureType::kCategorical) continue;
      for (int32_t c : v.categories()) {
        (*hist)[c] += 1.0;
        *n += 1.0;
      }
    }
  };
  accumulate(old_entities, &hist_old, &n_old);
  accumulate(new_entities, &hist_new, &n_new);
  if (n_old == 0.0 || n_new == 0.0) return 0.0;
  double l1 = 0.0;
  for (const auto& [c, count] : hist_old) {
    const auto it = hist_new.find(c);
    const double q = it == hist_new.end() ? 0.0 : it->second / n_new;
    l1 += std::abs(count / n_old - q);
  }
  for (const auto& [c, count] : hist_new) {
    if (hist_old.count(c) == 0) l1 += count / n_new;
  }
  return l1;
}

double Coverage(const FeatureStore& store, FeatureId feature,
                const std::vector<EntityId>& entities) {
  size_t present = 0, total = 0;
  for (EntityId id : entities) {
    auto row = store.Get(id);
    if (!row.ok()) continue;
    ++total;
    present += !(*row)->Get(feature).is_missing();
  }
  return SafeDiv(present, total);
}

}  // namespace

Result<std::vector<ResourceQualityReport>> ValidateResources(
    const ResourceRegistry& registry, const FeatureStore& store,
    const std::vector<EntityId>& old_entities,
    const std::vector<int>& old_labels,
    const std::vector<EntityId>& new_entities,
    const ValidationOptions& options) {
  if (old_entities.size() != old_labels.size()) {
    return Status::InvalidArgument("old entities and labels must align");
  }
  if (old_entities.empty()) {
    return Status::InvalidArgument("need labeled old-modality rows");
  }
  double pos_rate = 0.0;
  for (int y : old_labels) pos_rate += (y == 1);
  pos_rate /= static_cast<double>(old_labels.size());

  std::vector<ResourceQualityReport> reports;
  reports.reserve(registry.size());
  for (size_t f = 0; f < registry.size(); ++f) {
    const FeatureId id = static_cast<FeatureId>(f);
    const FeatureDef& def = registry.schema().def(id);
    ResourceQualityReport report;
    report.name = def.name;
    report.feature = id;
    report.coverage_old = Coverage(store, id, old_entities);
    report.coverage_new = Coverage(store, id, new_entities);
    double worst_precision = 1.0;
    if (def.type != FeatureType::kEmbedding) {
      BestItemQuality(store, id, def.type, old_entities, old_labels,
                      &report.best_item_f1, &report.best_item_precision,
                      &worst_precision);
    }
    const bool applies_old = MaskContains(def.modalities, Modality::kText);
    const bool applies_new = MaskContains(def.modalities, Modality::kImage);
    if (applies_old && applies_new &&
        def.type == FeatureType::kCategorical) {
      report.marginal_shift =
          MarginalShift(store, id, old_entities, new_entities);
    }
    const bool low_coverage =
        (applies_old && report.coverage_old < options.min_coverage) ||
        (applies_new && report.coverage_new < options.min_coverage);
    // Adversarial channel: some item is *anti-correlated* far below prior.
    const bool adversarial =
        def.type != FeatureType::kEmbedding && report.best_item_f1 > 0.0 &&
        report.best_item_precision <
            pos_rate * (1.0 + options.adversarial_lift) &&
        report.coverage_old > options.min_coverage;
    // Modality-inconsistent: the channels share the vocabulary but not the
    // distribution — LFs mined over it will not transfer.
    const bool inconsistent =
        report.marginal_shift > options.max_marginal_shift;
    report.suspect = low_coverage || adversarial || inconsistent;
    reports.push_back(std::move(report));
  }
  return reports;
}

CorruptedService::CorruptedService(std::string name, int32_t vocab,
                                   uint64_t seed, CorruptionMode mode,
                                   ServiceSet set)
    : seed_(seed), mode_(mode) {
  def_.name = std::move(name);
  def_.type = FeatureType::kCategorical;
  def_.set = set;
  def_.cardinality = vocab;
  def_.modalities = kAllModalities;
  def_.servable = true;
  seed_ = DeriveSeed(seed_, def_.name.c_str());
}

FeatureValue CorruptedService::Apply(const Entity& entity) const {
  Rng rng(DeriveSeed(seed_, entity.id));
  if (mode_ == CorruptionMode::kSpuriousTextOnly &&
      entity.modality == Modality::kText) {
    // A text-channel artifact: the bulk output is heavily skewed toward
    // low category ids (u^2 draw), and positives leak onto the first two
    // categories. Mined LFs will love it; on image it is uniform noise.
    std::vector<int32_t> categories;
    if (entity.label == 1 && rng.Bernoulli(0.8)) {
      categories.push_back(static_cast<int32_t>(rng.UniformInt(uint64_t{2})));
    } else {
      const double u = rng.Uniform();
      categories.push_back(static_cast<int32_t>(
          u * u * static_cast<double>(def_.cardinality)));
    }
    return FeatureValue::Categorical(std::move(categories));
  }
  // 1-3 uniformly random categories, unrelated to the entity.
  std::vector<int32_t> categories;
  const int count = 1 + static_cast<int>(rng.UniformInt(uint64_t{3}));
  for (int k = 0; k < count; ++k) {
    categories.push_back(static_cast<int32_t>(
        rng.UniformInt(static_cast<uint64_t>(def_.cardinality))));
  }
  return FeatureValue::Categorical(std::move(categories));
}

}  // namespace crossmodal
