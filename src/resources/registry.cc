#include "resources/registry.h"

#include "resources/embedding_services.h"
#include "resources/keyword_services.h"
#include "resources/page_services.h"
#include "resources/topic_services.h"
#include "resources/url_services.h"
#include "util/logging.h"

namespace crossmodal {

Status ResourceRegistry::Register(FeatureServicePtr service) {
  if (service == nullptr) {
    return Status::InvalidArgument("service must not be null");
  }
  CM_ASSIGN_OR_RETURN(FeatureId id, schema_.Add(service->output_def()));
  CM_CHECK(static_cast<size_t>(id) == services_.size());
  services_.push_back(std::move(service));
  health_.push_back(std::make_unique<ServiceHealthCounters>());
  return Status::OK();
}

const FeatureService& ResourceRegistry::service(FeatureId id) const {
  CM_CHECK(id >= 0 && static_cast<size_t>(id) < services_.size());
  return *services_[static_cast<size_t>(id)];
}

FeatureVector ResourceRegistry::GenerateFeatures(const Entity& entity) const {
  FeatureVector row(schema_.size());
  for (size_t i = 0; i < services_.size(); ++i) {
    const FeatureService& svc = *services_[i];
    if (!svc.AppliesTo(entity.modality)) continue;
    ServiceHealthCounters* hc = health_[i].get();
    hc->Add(hc->requests);
    Result<FeatureValue> v = svc.Call(entity);
    if (!v.ok()) {
      // Degraded mode: the upstream is down past its retry budget. Record a
      // missing value; LFs over this feature abstain downstream.
      hc->Add(hc->degraded_misses);
      continue;
    }
    if (v->is_missing()) {
      hc->Add(hc->abstains_served);
      continue;
    }
    row.Set(static_cast<FeatureId>(i), std::move(*v));
  }
  return row;
}

Status ResourceRegistry::InstallFaultLayer(const FaultPlan& plan) {
  if (fault_layer_installed_) {
    return Status::FailedPrecondition("fault layer already installed");
  }
  for (const FaultPlan::Entry& entry : plan.entries) {
    if (entry.service != "*" && !schema_.Find(entry.service).ok()) {
      return Status::NotFound("fault plan names unknown service '" +
                              entry.service + "'");
    }
  }
  for (size_t i = 0; i < services_.size(); ++i) {
    const FaultPlan::Entry* entry = plan.FindEntry(services_[i]->name());
    if (entry == nullptr) continue;
    FeatureServicePtr wrapped = std::make_unique<FaultInjectingService>(
        std::move(services_[i]), entry->fault, plan.seed, health_[i].get());
    if (entry->retry.max_attempts > 1) {
      wrapped = std::make_unique<RetryingService>(
          std::move(wrapped), entry->retry, plan.seed, health_[i].get());
    }
    services_[i] = std::move(wrapped);
  }
  fault_layer_installed_ = true;
  return Status::OK();
}

Status ResourceRegistry::InstallResponseCache(size_t capacity) {
  if (response_cache_ != nullptr) {
    return Status::FailedPrecondition("response cache already installed");
  }
  if (capacity == 0) {
    return Status::InvalidArgument("cache capacity must be > 0");
  }
  response_cache_ = std::make_unique<ResponseCache>(capacity);
  for (size_t i = 0; i < services_.size(); ++i) {
    services_[i] = std::make_unique<CachingService>(
        std::move(services_[i]), static_cast<FeatureId>(i),
        response_cache_.get(), health_[i].get());
  }
  return Status::OK();
}

std::vector<ServiceHealth> ResourceRegistry::HealthSnapshot() const {
  std::vector<ServiceHealth> out;
  out.reserve(services_.size());
  for (size_t i = 0; i < services_.size(); ++i) {
    out.push_back(health_[i]->Snapshot(services_[i]->name()));
  }
  return out;
}

void ResourceRegistry::ResetHealth() const {
  for (const auto& hc : health_) hc->Reset();
}

Result<ResourceRegistry> BuildModerationRegistry(const CorpusGenerator& gen,
                                                 uint64_t seed) {
  const WorldConfig& world = gen.world();
  ResourceRegistry registry;

  // Noise profiles. Model-based services matured on text; their image
  // channels are noisier. Metadata joins (aggregates) work equally well
  // across modalities but abstain more often on fresh image traffic.
  const ChannelNoise model_base{.drop_rate = 0.05,
                                .confuse_rate = 0.04,
                                .spurious_rate = 0.05,
                                .missing_rate = 0.02};
  const ModalityNoise model_noise = ModalityNoise::Uniform(model_base, 2.2);
  const ChannelNoise agg_base{.drop_rate = 0.0,
                              .confuse_rate = 0.0,
                              .spurious_rate = 0.0,
                              .missing_rate = 0.05};
  const ModalityNoise agg_noise = ModalityNoise::Uniform(agg_base, 1.6);
  const ChannelNoise flag_base{.drop_rate = 0.02,
                               .confuse_rate = 0.01,
                               .spurious_rate = 0.0,
                               .missing_rate = 0.01};
  const ModalityNoise flag_noise = ModalityNoise::Uniform(flag_base, 1.5);
  // Object detection is the one service that is *better* on image.
  ModalityNoise object_noise;
  object_noise.image = model_base;
  object_noise.video = model_base.Scaled(1.2);
  object_noise.text = model_base.Scaled(2.4);

  // ---- Set A: URL-based ------------------------------------------------
  CM_RETURN_IF_ERROR(registry.Register(
      std::make_unique<UrlCategoryService>(world, seed, model_noise)));
  CM_RETURN_IF_ERROR(registry.Register(
      std::make_unique<DomainReputationService>(seed, agg_noise)));
  CM_RETURN_IF_ERROR(registry.Register(
      std::make_unique<ShareVelocityService>(seed, agg_noise)));

  // ---- Set B: keyword-based ---------------------------------------------
  CM_RETURN_IF_ERROR(registry.Register(
      std::make_unique<KeywordTopicsService>(world, seed, model_noise)));
  CM_RETURN_IF_ERROR(registry.Register(std::make_unique<KeywordRiskFlagService>(
      gen.risky_keywords(), seed, flag_noise)));

  // ---- Set C: topic-model-based ------------------------------------------
  CM_RETURN_IF_ERROR(registry.Register(
      std::make_unique<TopicPrimaryService>(world, seed, model_noise)));
  CM_RETURN_IF_ERROR(registry.Register(
      std::make_unique<TopicSecondaryService>(world, seed, model_noise)));
  CM_RETURN_IF_ERROR(registry.Register(
      std::make_unique<ContentCategoryService>(world, seed, model_noise)));
  CM_RETURN_IF_ERROR(registry.Register(
      std::make_unique<SentimentService>(world, seed, model_noise)));
  CM_RETURN_IF_ERROR(registry.Register(
      std::make_unique<SettingService>(world, seed, model_noise)));

  // ---- Set D: page-content-based ------------------------------------------
  CM_RETURN_IF_ERROR(registry.Register(
      std::make_unique<PageCategoryService>(world, seed, model_noise)));
  CM_RETURN_IF_ERROR(registry.Register(
      std::make_unique<KnowledgeGraphService>(world, seed, model_noise)));
  CM_RETURN_IF_ERROR(registry.Register(
      std::make_unique<ObjectLabelsService>(world, seed, object_noise)));
  CM_RETURN_IF_ERROR(registry.Register(
      std::make_unique<UserReportCountService>(seed, agg_noise)));
  CM_RETURN_IF_ERROR(registry.Register(
      std::make_unique<ContentRiskScoreService>(seed, model_noise)));

  // ---- Image-specific services ---------------------------------------------
  CM_RETURN_IF_ERROR(
      registry.Register(ImageEmbeddingService::Proprietary(world, seed)));
  CM_RETURN_IF_ERROR(
      registry.Register(ImageEmbeddingService::Generic(world, seed)));
  CM_RETURN_IF_ERROR(
      registry.Register(std::make_unique<ImageQualityService>(seed)));

  return registry;
}

}  // namespace crossmodal
