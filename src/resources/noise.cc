#include "resources/noise.h"

#include <algorithm>

namespace crossmodal {

ChannelNoise ChannelNoise::Scaled(double f) const {
  auto clamp = [](double v) { return std::min(0.95, std::max(0.0, v)); };
  ChannelNoise out;
  out.drop_rate = clamp(drop_rate * f);
  out.confuse_rate = clamp(confuse_rate * f);
  out.spurious_rate = clamp(spurious_rate * f);
  out.missing_rate = clamp(missing_rate * f);
  return out;
}

const ChannelNoise& ModalityNoise::For(Modality m) const {
  switch (m) {
    case Modality::kText:
      return text;
    case Modality::kImage:
      return image;
    case Modality::kVideo:
      return video;
  }
  return text;
}

ModalityNoise ModalityNoise::Uniform(const ChannelNoise& base,
                                     double image_factor) {
  ModalityNoise out;
  out.text = base;
  out.image = base.Scaled(image_factor);
  out.video = base.Scaled(image_factor * 1.15);
  return out;
}

Rng ServiceRng(uint64_t service_seed, uint64_t entity_id) {
  return Rng(DeriveSeed(service_seed, entity_id));
}

FeatureValue NoisyCategorical(const std::vector<int32_t>& truth, int32_t vocab,
                              const ChannelNoise& noise, Rng* rng) {
  if (rng->Bernoulli(noise.missing_rate)) return FeatureValue::Missing();
  std::vector<int32_t> observed;
  observed.reserve(truth.size() + 1);
  for (int32_t v : truth) {
    if (rng->Bernoulli(noise.drop_rate)) continue;
    if (rng->Bernoulli(noise.confuse_rate)) {
      observed.push_back(static_cast<int32_t>(
          rng->UniformInt(static_cast<uint64_t>(vocab))));
    } else {
      observed.push_back(v);
    }
  }
  if (rng->Bernoulli(noise.spurious_rate)) {
    observed.push_back(static_cast<int32_t>(
        rng->UniformInt(static_cast<uint64_t>(vocab))));
  }
  return FeatureValue::Categorical(std::move(observed));
}

FeatureValue NoisyCategorical(int32_t truth, int32_t vocab,
                              const ChannelNoise& noise, Rng* rng) {
  return NoisyCategorical(std::vector<int32_t>{truth}, vocab, noise, rng);
}

FeatureValue NoisyNumeric(double truth, double sigma,
                          const ChannelNoise& noise, Rng* rng) {
  if (rng->Bernoulli(noise.missing_rate)) return FeatureValue::Missing();
  return FeatureValue::Numeric(truth + rng->Normal(0.0, sigma));
}

}  // namespace crossmodal
