// Service set D: page-content-based services and aggregate statistics (§6.2).

#ifndef CROSSMODAL_RESOURCES_PAGE_SERVICES_H_
#define CROSSMODAL_RESOURCES_PAGE_SERVICES_H_

#include "resources/simulated_service.h"
#include "synth/world_config.h"

namespace crossmodal {

/// Categorizes the web page the post links to.
class PageCategoryService : public SimulatedService {
 public:
  PageCategoryService(const WorldConfig& world, uint64_t seed,
                      ModalityNoise noise);

 protected:
  FeatureValue Observe(const Entity& entity, const ChannelNoise& noise,
                       Rng* rng) const override;

 private:
  int32_t vocab_;
};

/// Knowledge-graph querying tool: entities and relationships extracted from
/// the post and its linked page (multivalent).
class KnowledgeGraphService : public SimulatedService {
 public:
  KnowledgeGraphService(const WorldConfig& world, uint64_t seed,
                        ModalityNoise noise);

 protected:
  FeatureValue Observe(const Entity& entity, const ChannelNoise& noise,
                       Rng* rng) const override;

 private:
  int32_t vocab_;
};

/// Object-detection model for a related task (multivalent). More reliable on
/// image than text (objects are only *mentioned* in text).
class ObjectLabelsService : public SimulatedService {
 public:
  ObjectLabelsService(const WorldConfig& world, uint64_t seed,
                      ModalityNoise noise);

 protected:
  FeatureValue Observe(const Entity& entity, const ChannelNoise& noise,
                       Rng* rng) const override;

 private:
  int32_t vocab_;
};

/// Aggregate statistic: how many times the posting user has been reported
/// (joined via the user-ID metadata field; numeric).
class UserReportCountService : public SimulatedService {
 public:
  explicit UserReportCountService(uint64_t seed, ModalityNoise noise);

 protected:
  FeatureValue Observe(const Entity& entity, const ChannelNoise& noise,
                       Rng* rng) const override;
};

/// Expensive ensemble risk scorer; too costly to run at serving time, so it
/// is declared NONSERVABLE (§6.4): it may feed labeling functions and label
/// propagation but never the deployed end model.
class ContentRiskScoreService : public SimulatedService {
 public:
  explicit ContentRiskScoreService(uint64_t seed, ModalityNoise noise);

 protected:
  FeatureValue Observe(const Entity& entity, const ChannelNoise& noise,
                       Rng* rng) const override;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_RESOURCES_PAGE_SERVICES_H_
