// Resource-quality validation (§7.1).
//
// "A low quality feature/organizational resource might negatively impact
// performance if it were selected via automated processes without
// validation; ... quality must be validated in advance." (§6.5)
//
// ValidateResources measures, per service, its coverage on each modality
// and the best mined order-1 item's dev-set quality, and flags services
// that fail the thresholds. CorruptedService simulates a broken upstream
// resource (random outputs uncorrelated with anything) for failure
// injection in tests and ablations.

#ifndef CROSSMODAL_RESOURCES_VALIDATION_H_
#define CROSSMODAL_RESOURCES_VALIDATION_H_

#include <string>
#include <vector>

#include "resources/feature_service.h"
#include "resources/registry.h"
#include "util/result.h"

namespace crossmodal {

/// Per-service audit result.
struct ResourceQualityReport {
  std::string name;
  FeatureId feature = -1;
  double coverage_old = 0.0;  ///< Fraction of old-modality rows populated.
  double coverage_new = 0.0;  ///< Fraction of new-modality rows populated.
  /// Best mined order-1 item's F1 / precision on the labeled dev rows
  /// (0 for embedding features, which are validated by similarity use).
  double best_item_f1 = 0.0;
  double best_item_precision = 0.0;
  /// L1 distance between the feature's category distributions on the old
  /// vs new modality (categorical features only). A feature in a *common*
  /// space should keep roughly the same marginal across modalities; a
  /// value near 2 means the channels share nothing but the vocabulary —
  /// the signature of a modality-specific (spurious) resource.
  double marginal_shift = 0.0;
  bool suspect = false;  ///< Failed a threshold; exclude or review.
};

/// Validation thresholds.
struct ValidationOptions {
  double min_coverage = 0.5;  ///< On either modality.
  /// Items below this lift over the positive rate mark the service as
  /// carrying no task signal (context-only; not flagged) — suspicion is
  /// raised only for coverage failures and adversarial channels (items
  /// whose precision falls *below* the class prior by this factor).
  double adversarial_lift = 0.5;
  /// Categorical features whose old-vs-new marginal L1 distance exceeds
  /// this are suspect. Legit services shift substantially already (channel
  /// noise + background rotation put them near 1.0 here), so only gross
  /// inconsistencies are flagged automatically; subtler text-only label
  /// leaks require the §7.2 human review of mined LFs (see the
  /// resource-quality ablation bench).
  double max_marginal_shift = 1.35;
};

/// Audits every feature of `registry` against labeled old-modality rows
/// (`dev_entities`/`dev_labels`) and unlabeled new-modality rows, all of
/// which must be present in `store`.
[[nodiscard]] Result<std::vector<ResourceQualityReport>> ValidateResources(
    const ResourceRegistry& registry, const FeatureStore& store,
    const std::vector<EntityId>& old_entities,
    const std::vector<int>& old_labels,
    const std::vector<EntityId>& new_entities,
    const ValidationOptions& options = ValidationOptions());

/// How a CorruptedService misbehaves.
enum class CorruptionMode {
  /// Uniformly random categories, unrelated to anything. Harmless in
  /// practice: mining thresholds filter items whose precision sits at the
  /// class prior, and models learn near-zero weights.
  kNoise,
  /// The dangerous failure (§6.5): on the OLD modality the output
  /// correlates with the label (a leaky/text-channel-specific artifact),
  /// so mined LFs adopt it with excellent dev precision — but on the NEW
  /// modality it is uniform noise, poisoning the transferred weak labels.
  kSpuriousTextOnly,
};

/// A broken upstream resource (deterministic per entity).
class CorruptedService : public FeatureService {
 public:
  /// `name` must be unique in the registry; `vocab` is the fake vocabulary.
  CorruptedService(std::string name, int32_t vocab, uint64_t seed,
                   CorruptionMode mode = CorruptionMode::kNoise,
                   ServiceSet set = ServiceSet::kD);

  const FeatureDef& output_def() const override { return def_; }
  ResourceKind kind() const override {
    return ResourceKind::kModelBasedService;
  }
  FeatureValue Apply(const Entity& entity) const override;

 private:
  FeatureDef def_;
  uint64_t seed_;
  CorruptionMode mode_;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_RESOURCES_VALIDATION_H_
