#include "resources/frame_splitter.h"

#include "util/random.h"

namespace crossmodal {

EntityId VideoFrameSplitter::FrameId(EntityId video_id, size_t k) {
  return DeriveSeed(video_id, 0xF0A0E000ULL + k);
}

Result<std::vector<Entity>> VideoFrameSplitter::Split(
    const Entity& video) const {
  if (video.modality != Modality::kVideo) {
    return Status::InvalidArgument("Split requires a video entity");
  }
  if (video.frames.empty()) {
    return Status::FailedPrecondition("video has no frames");
  }
  size_t n = video.frames.size();
  if (max_frames_ > 0 && max_frames_ < n) n = max_frames_;
  // Representative frames: evenly strided over the video.
  const size_t stride = video.frames.size() / n;
  std::vector<Entity> out;
  out.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    Entity frame;
    frame.id = FrameId(video.id, k);
    frame.modality = Modality::kImage;
    frame.label = video.label;
    frame.timestamp = video.timestamp;
    frame.latent = video.frames[k * stride];
    out.push_back(std::move(frame));
  }
  return out;
}

FeatureVector AggregateFrameRows(const std::vector<FeatureVector>& frame_rows,
                                 const FeatureSchema& schema) {
  FeatureVector out(schema.size());
  for (size_t f = 0; f < schema.size(); ++f) {
    const FeatureId id = static_cast<FeatureId>(f);
    switch (schema.def(id).type) {
      case FeatureType::kCategorical: {
        std::vector<int32_t> all;
        bool present = false;
        for (const auto& row : frame_rows) {
          const FeatureValue& v = row.Get(id);
          if (v.is_missing() || v.type() != FeatureType::kCategorical) {
            continue;
          }
          present = true;
          all.insert(all.end(), v.categories().begin(),
                     v.categories().end());
        }
        if (present) out.Set(id, FeatureValue::Categorical(std::move(all)));
        break;
      }
      case FeatureType::kNumeric: {
        double total = 0.0;
        size_t count = 0;
        for (const auto& row : frame_rows) {
          const FeatureValue& v = row.Get(id);
          if (v.is_missing() || v.type() != FeatureType::kNumeric) continue;
          total += v.numeric();
          ++count;
        }
        if (count > 0) out.Set(id, FeatureValue::Numeric(total / count));
        break;
      }
      case FeatureType::kEmbedding: {
        std::vector<float> mean;
        size_t count = 0;
        for (const auto& row : frame_rows) {
          const FeatureValue& v = row.Get(id);
          if (v.is_missing() || v.type() != FeatureType::kEmbedding) continue;
          if (mean.empty()) mean.assign(v.embedding().size(), 0.0f);
          if (mean.size() != v.embedding().size()) continue;
          for (size_t d = 0; d < mean.size(); ++d) {
            mean[d] += v.embedding()[d];
          }
          ++count;
        }
        if (count > 0) {
          for (auto& x : mean) x /= static_cast<float>(count);
          out.Set(id, FeatureValue::Embedding(std::move(mean)));
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace crossmodal
