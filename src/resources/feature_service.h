// FeatureService: the organizational-resource abstraction (§3.1).
//
// A service takes a data point of some modality and returns a structured
// output describing it — a categorical set, a number, or an embedding. The
// library treats the organization's services as a library of feature
// transformations; composing their outputs forms the common feature space.

#ifndef CROSSMODAL_RESOURCES_FEATURE_SERVICE_H_
#define CROSSMODAL_RESOURCES_FEATURE_SERVICE_H_

#include <memory>
#include <string>

#include "features/feature_schema.h"
#include "features/feature_value.h"
#include "synth/entity.h"
#include "util/result.h"

namespace crossmodal {

/// Kind of organizational resource, for documentation/reporting (§3.1.1).
enum class ResourceKind {
  kModelBasedService,    ///< Topic models, object detectors, KG queries, ...
  kAggregateStatistic,   ///< Metadata-joined statistics (reports, shares).
  kRuleBasedService,     ///< Team heuristics and keyword lists.
  kPretrainedEmbedding,  ///< Dense embeddings from pre-trained models.
};

const char* ResourceKindName(ResourceKind kind);

/// An organizational resource exposed as a feature transformation.
///
/// Apply() must behave as a pure function of the entity: repeated
/// application yields the identical value (simulated services derive their
/// observation noise deterministically from (service seed, entity id)).
/// Returns a missing FeatureValue when the service does not apply to the
/// entity's modality or abstains.
class FeatureService {
 public:
  virtual ~FeatureService() = default;

  /// Declaration of the feature this service emits.
  virtual const FeatureDef& output_def() const = 0;

  /// What kind of resource this is.
  virtual ResourceKind kind() const = 0;

  /// Computes the feature for one entity.
  virtual FeatureValue Apply(const Entity& entity) const = 0;

  /// Fallible application: like Apply(), but a broken upstream can surface
  /// the failure (Unavailable / DeadlineExceeded for transient faults,
  /// FailedPrecondition for permanent outages) instead of silently
  /// abstaining. `attempt` numbers the retries of one logical request so
  /// fault-injecting decorators can draw independent deterministic faults
  /// per try; implementations without a failure mode ignore it. The default
  /// wraps Apply() and never fails.
  [[nodiscard]] virtual Result<FeatureValue> Call(const Entity& entity,
                                                  int attempt) const {
    (void)attempt;
    return Apply(entity);
  }

  /// First-attempt convenience overload.
  [[nodiscard]] Result<FeatureValue> Call(const Entity& entity) const {
    return Call(entity, 0);
  }

  const std::string& name() const { return output_def().name; }

  /// True if the service emits values for this modality.
  bool AppliesTo(Modality m) const {
    return MaskContains(output_def().modalities, m);
  }
};

using FeatureServicePtr = std::unique_ptr<FeatureService>;

}  // namespace crossmodal

#endif  // CROSSMODAL_RESOURCES_FEATURE_SERVICE_H_
