// Image-specific pre-trained embedding and quality services (§6.2: "images
// possess 3 pre-trained embedding and image-specific features").

#ifndef CROSSMODAL_RESOURCES_EMBEDDING_SERVICES_H_
#define CROSSMODAL_RESOURCES_EMBEDDING_SERVICES_H_

#include <memory>
#include <string>
#include <vector>

#include "resources/simulated_service.h"
#include "synth/world_config.h"

namespace crossmodal {

/// A pre-trained image embedding: a fixed random linear map of the entity's
/// latent semantic vector plus Gaussian observation noise.
///
/// Two fidelity presets mirror §6.6:
///  - Proprietary(): the org-wide black-box embedding (low noise, full
///    semantic rank) — the paper's strongest embedding;
///  - Generic(): an inception-v3-style generic embedding (higher noise and a
///    truncated semantic view), which the proprietary one beats by a small
///    factor and curated services beat by up to 1.54x.
class ImageEmbeddingService : public SimulatedService {
 public:
  static std::unique_ptr<ImageEmbeddingService> Proprietary(
      const WorldConfig& world, uint64_t seed);
  static std::unique_ptr<ImageEmbeddingService> Generic(
      const WorldConfig& world, uint64_t seed);

  ImageEmbeddingService(const WorldConfig& world, std::string name,
                        uint64_t seed, double noise_sigma, int semantic_rank);

 protected:
  FeatureValue Observe(const Entity& entity, const ChannelNoise& noise,
                       Rng* rng) const override;

 private:
  std::vector<std::vector<float>> projection_;  // embedding_dim x semantic_dim
  double noise_sigma_;
  int semantic_rank_;  // how many semantic dims the embedding can see
  int out_dim_;
};

/// Image-quality score (resolution/compression proxy); weakly informative.
class ImageQualityService : public SimulatedService {
 public:
  explicit ImageQualityService(uint64_t seed);

 protected:
  FeatureValue Observe(const Entity& entity, const ChannelNoise& noise,
                       Rng* rng) const override;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_RESOURCES_EMBEDDING_SERVICES_H_
