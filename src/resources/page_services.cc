#include "resources/page_services.h"

#include <cmath>

namespace crossmodal {

PageCategoryService::PageCategoryService(const WorldConfig& world,
                                         uint64_t seed, ModalityNoise noise)
    : SimulatedService(
          FeatureDef{.name = "page_category",
                     .type = FeatureType::kCategorical,
                     .set = ServiceSet::kD,
                     .cardinality = world.num_page_categories,
                     .modalities = kAllModalities,
                     .servable = true},
          ResourceKind::kModelBasedService, seed, noise),
      vocab_(world.num_page_categories) {}

FeatureValue PageCategoryService::Observe(const Entity& entity,
                                          const ChannelNoise& noise,
                                          Rng* rng) const {
  return NoisyCategorical(entity.latent.page_category, vocab_, noise, rng);
}

KnowledgeGraphService::KnowledgeGraphService(const WorldConfig& world,
                                             uint64_t seed,
                                             ModalityNoise noise)
    : SimulatedService(
          FeatureDef{.name = "kg_entities",
                     .type = FeatureType::kCategorical,
                     .set = ServiceSet::kD,
                     .cardinality = world.num_kg_entities,
                     .modalities = kAllModalities,
                     .servable = true},
          ResourceKind::kModelBasedService, seed, noise),
      vocab_(world.num_kg_entities) {}

FeatureValue KnowledgeGraphService::Observe(const Entity& entity,
                                            const ChannelNoise& noise,
                                            Rng* rng) const {
  return NoisyCategorical(entity.latent.kg_entities, vocab_, noise, rng);
}

ObjectLabelsService::ObjectLabelsService(const WorldConfig& world,
                                         uint64_t seed, ModalityNoise noise)
    : SimulatedService(
          FeatureDef{.name = "object_labels",
                     .type = FeatureType::kCategorical,
                     .set = ServiceSet::kD,
                     .cardinality = world.num_objects,
                     .modalities = kAllModalities,
                     .servable = true},
          ResourceKind::kModelBasedService, seed, noise),
      vocab_(world.num_objects) {}

FeatureValue ObjectLabelsService::Observe(const Entity& entity,
                                          const ChannelNoise& noise,
                                          Rng* rng) const {
  return NoisyCategorical(entity.latent.objects, vocab_, noise, rng);
}

UserReportCountService::UserReportCountService(uint64_t seed,
                                               ModalityNoise noise)
    : SimulatedService(
          FeatureDef{.name = "user_report_count",
                     .type = FeatureType::kNumeric,
                     .set = ServiceSet::kD,
                     .cardinality = 0,
                     .modalities = kAllModalities,
                     .servable = true},
          ResourceKind::kAggregateStatistic, seed, noise) {}

FeatureValue UserReportCountService::Observe(const Entity& entity,
                                             const ChannelNoise& noise,
                                             Rng* rng) const {
  return NoisyNumeric(std::log1p(entity.latent.report_count), 0.1, noise,
                      rng);
}

ContentRiskScoreService::ContentRiskScoreService(uint64_t seed,
                                                 ModalityNoise noise)
    : SimulatedService(
          FeatureDef{.name = "content_risk_score",
                     .type = FeatureType::kNumeric,
                     .set = ServiceSet::kD,
                     .cardinality = 0,
                     .modalities = kAllModalities,
                     .servable = false},  // nonservable (§6.4)
          ResourceKind::kModelBasedService, seed, noise) {}

FeatureValue ContentRiskScoreService::Observe(const Entity& entity,
                                              const ChannelNoise& noise,
                                              Rng* rng) const {
  const double score =
      0.60 * entity.latent.intensity + 0.25 * entity.latent.user_risk +
      0.15 * entity.latent.url_risk;
  return NoisyNumeric(score, 0.04, noise, rng);
}

}  // namespace crossmodal
