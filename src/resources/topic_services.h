// Service set C: topic-model-based services (§6.2).

#ifndef CROSSMODAL_RESOURCES_TOPIC_SERVICES_H_
#define CROSSMODAL_RESOURCES_TOPIC_SERVICES_H_

#include "resources/simulated_service.h"
#include "synth/world_config.h"

namespace crossmodal {

/// Primary topic assigned by the organization-wide topic model.
class TopicPrimaryService : public SimulatedService {
 public:
  TopicPrimaryService(const WorldConfig& world, uint64_t seed,
                      ModalityNoise noise);

 protected:
  FeatureValue Observe(const Entity& entity, const ChannelNoise& noise,
                       Rng* rng) const override;

 private:
  int32_t vocab_;
};

/// Secondary/related topics (multivalent): the topic model's tail
/// assignments — the true topic's neighbors in a fixed topic ring.
class TopicSecondaryService : public SimulatedService {
 public:
  TopicSecondaryService(const WorldConfig& world, uint64_t seed,
                        ModalityNoise noise);

 protected:
  FeatureValue Observe(const Entity& entity, const ChannelNoise& noise,
                       Rng* rng) const override;

 private:
  int32_t vocab_;
};

/// Coarse content categorization (topic hierarchy roll-up).
class ContentCategoryService : public SimulatedService {
 public:
  ContentCategoryService(const WorldConfig& world, uint64_t seed,
                         ModalityNoise noise);

 protected:
  FeatureValue Observe(const Entity& entity, const ChannelNoise& noise,
                       Rng* rng) const override;

 private:
  int32_t topic_vocab_;
  int32_t vocab_;
};

/// Sentiment classifier (3-way).
class SentimentService : public SimulatedService {
 public:
  SentimentService(const WorldConfig& world, uint64_t seed,
                   ModalityNoise noise);

 protected:
  FeatureValue Observe(const Entity& entity, const ChannelNoise& noise,
                       Rng* rng) const override;
};

/// Scene/setting classifier (outdoor, indoor, ...).
class SettingService : public SimulatedService {
 public:
  SettingService(const WorldConfig& world, uint64_t seed, ModalityNoise noise);

 protected:
  FeatureValue Observe(const Entity& entity, const ChannelNoise& noise,
                       Rng* rng) const override;

 private:
  int32_t vocab_;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_RESOURCES_TOPIC_SERVICES_H_
