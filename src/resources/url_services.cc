#include "resources/url_services.h"

#include <algorithm>
#include <cmath>

namespace crossmodal {

UrlCategoryService::UrlCategoryService(const WorldConfig& world, uint64_t seed,
                                       ModalityNoise noise)
    : SimulatedService(
          FeatureDef{.name = "url_category",
                     .type = FeatureType::kCategorical,
                     .set = ServiceSet::kA,
                     .cardinality = world.num_url_categories,
                     .modalities = kAllModalities,
                     .servable = true},
          ResourceKind::kModelBasedService, seed, noise),
      vocab_(world.num_url_categories) {}

FeatureValue UrlCategoryService::Observe(const Entity& entity,
                                         const ChannelNoise& noise,
                                         Rng* rng) const {
  return NoisyCategorical(entity.latent.url_category, vocab_, noise, rng);
}

DomainReputationService::DomainReputationService(uint64_t seed,
                                                 ModalityNoise noise)
    : SimulatedService(
          FeatureDef{.name = "domain_reputation",
                     .type = FeatureType::kCategorical,
                     .set = ServiceSet::kA,
                     .cardinality = 4,
                     .modalities = kAllModalities,
                     .servable = true},
          ResourceKind::kAggregateStatistic, seed, noise) {}

FeatureValue DomainReputationService::Observe(const Entity& entity,
                                              const ChannelNoise& noise,
                                              Rng* rng) const {
  // Reputation tier from the linked page's riskiness: 0 (trusted) .. 3 (bad).
  const double risk =
      std::min(1.0, std::max(0.0, entity.latent.url_risk +
                                      rng->Normal(0.0, 0.08)));
  const int32_t tier = std::min<int32_t>(3, static_cast<int32_t>(risk * 4.0));
  return NoisyCategorical(tier, 4, noise, rng);
}

ShareVelocityService::ShareVelocityService(uint64_t seed, ModalityNoise noise)
    : SimulatedService(
          FeatureDef{.name = "share_velocity",
                     .type = FeatureType::kNumeric,
                     .set = ServiceSet::kA,
                     .cardinality = 0,
                     .modalities = kAllModalities,
                     .servable = true},
          ResourceKind::kAggregateStatistic, seed, noise) {}

FeatureValue ShareVelocityService::Observe(const Entity& entity,
                                           const ChannelNoise& noise,
                                           Rng* rng) const {
  return NoisyNumeric(std::log1p(entity.latent.share_count), 0.15, noise, rng);
}

}  // namespace crossmodal
