// Service set B: keyword-based metadata services (§6.2).

#ifndef CROSSMODAL_RESOURCES_KEYWORD_SERVICES_H_
#define CROSSMODAL_RESOURCES_KEYWORD_SERVICES_H_

#include <vector>

#include "resources/simulated_service.h"
#include "synth/world_config.h"

namespace crossmodal {

/// Extracts keyword metadata from the post (keywords for text; OCR/caption
/// keywords for image, hence a noisier image channel).
class KeywordTopicsService : public SimulatedService {
 public:
  KeywordTopicsService(const WorldConfig& world, uint64_t seed,
                       ModalityNoise noise);

 protected:
  FeatureValue Observe(const Entity& entity, const ChannelNoise& noise,
                       Rng* rng) const override;

 private:
  int32_t vocab_;
};

/// Rule-based service: the team's curated list of risky keywords (§3.1.1).
/// Fires (category 1) when blatant content carries a known-risky keyword;
/// small false-fire rate on everything else. Binary categorical {0, 1}.
class KeywordRiskFlagService : public SimulatedService {
 public:
  KeywordRiskFlagService(std::vector<int32_t> risky_keywords, uint64_t seed,
                         ModalityNoise noise, double false_fire_rate = 0.005);

 protected:
  FeatureValue Observe(const Entity& entity, const ChannelNoise& noise,
                       Rng* rng) const override;

 private:
  std::vector<int32_t> risky_keywords_;
  double false_fire_rate_;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_RESOURCES_KEYWORD_SERVICES_H_
