#include "resources/keyword_services.h"

#include <algorithm>

namespace crossmodal {

KeywordTopicsService::KeywordTopicsService(const WorldConfig& world,
                                           uint64_t seed, ModalityNoise noise)
    : SimulatedService(
          FeatureDef{.name = "keyword_topics",
                     .type = FeatureType::kCategorical,
                     .set = ServiceSet::kB,
                     .cardinality = world.num_keywords,
                     .modalities = kAllModalities,
                     .servable = true},
          ResourceKind::kModelBasedService, seed, noise),
      vocab_(world.num_keywords) {}

FeatureValue KeywordTopicsService::Observe(const Entity& entity,
                                           const ChannelNoise& noise,
                                           Rng* rng) const {
  return NoisyCategorical(entity.latent.keywords, vocab_, noise, rng);
}

KeywordRiskFlagService::KeywordRiskFlagService(
    std::vector<int32_t> risky_keywords, uint64_t seed, ModalityNoise noise,
    double false_fire_rate)
    : SimulatedService(
          FeatureDef{.name = "keyword_risk_flag",
                     .type = FeatureType::kCategorical,
                     .set = ServiceSet::kB,
                     .cardinality = 2,
                     .modalities = kAllModalities,
                     .servable = true},
          ResourceKind::kRuleBasedService, seed, noise),
      risky_keywords_(std::move(risky_keywords)),
      false_fire_rate_(false_fire_rate) {
  std::sort(risky_keywords_.begin(), risky_keywords_.end());
}

FeatureValue KeywordRiskFlagService::Observe(const Entity& entity,
                                             const ChannelNoise& noise,
                                             Rng* rng) const {
  bool has_risky_keyword = false;
  for (int32_t k : entity.latent.keywords) {
    if (std::binary_search(risky_keywords_.begin(), risky_keywords_.end(),
                           k)) {
      has_risky_keyword = true;
      break;
    }
  }
  // The heuristic targets blatant content: the rule's authors tuned it on
  // obvious violations, so it keys on high intensity plus a listed keyword.
  bool fires = has_risky_keyword && entity.latent.intensity > 0.6 &&
               rng->Bernoulli(0.92);
  if (!fires && rng->Bernoulli(false_fire_rate_)) fires = true;
  return NoisyCategorical(fires ? 1 : 0, 2, noise, rng);
}

}  // namespace crossmodal
