// ResourceRegistry: the curated set of organizational resources used for a
// task, and the common feature space they induce (pipeline step A, §3).

#ifndef CROSSMODAL_RESOURCES_REGISTRY_H_
#define CROSSMODAL_RESOURCES_REGISTRY_H_

#include <memory>
#include <vector>

#include "features/feature_schema.h"
#include "features/feature_vector.h"
#include "resources/feature_service.h"
#include "synth/corpus_generator.h"
#include "util/result.h"

namespace crossmodal {

/// Owns a set of FeatureServices and the FeatureSchema their outputs form.
/// Feature i of the schema is produced by service i.
class ResourceRegistry {
 public:
  ResourceRegistry() = default;

  // Movable, not copyable (owns services; schema holds stable ids).
  ResourceRegistry(ResourceRegistry&&) = default;
  ResourceRegistry& operator=(ResourceRegistry&&) = default;

  /// Registers a service; its output feature is appended to the schema.
  /// Fails on duplicate feature names.
  [[nodiscard]] Status Register(FeatureServicePtr service);

  /// The induced common feature space.
  const FeatureSchema& schema() const { return schema_; }

  size_t size() const { return services_.size(); }

  /// The service producing feature `id`.
  const FeatureService& service(FeatureId id) const;

  /// Applies every applicable service to the entity, producing its row in
  /// the common feature space (services that do not apply or abstain leave
  /// missing slots).
  FeatureVector GenerateFeatures(const Entity& entity) const;

 private:
  std::vector<FeatureServicePtr> services_;
  FeatureSchema schema_;
};

/// Builds the paper's 15-service registry (sets A/B/C/D) plus the three
/// image-specific services, wired against a task's synthetic world:
///   A: url_category, domain_reputation, share_velocity
///   B: keyword_topics, keyword_risk_flag
///   C: topic_primary, topic_secondary, content_category, sentiment, setting
///   D: page_category, kg_entities, object_labels, user_report_count,
///      content_risk_score (nonservable)
///   image: proprietary_embedding, generic_embedding, image_quality
[[nodiscard]] Result<ResourceRegistry> BuildModerationRegistry(const CorpusGenerator& gen,
                                                 uint64_t seed);

}  // namespace crossmodal

#endif  // CROSSMODAL_RESOURCES_REGISTRY_H_
