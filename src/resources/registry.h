// ResourceRegistry: the curated set of organizational resources used for a
// task, and the common feature space they induce (pipeline step A, §3).

#ifndef CROSSMODAL_RESOURCES_REGISTRY_H_
#define CROSSMODAL_RESOURCES_REGISTRY_H_

#include <memory>
#include <vector>

#include "features/feature_schema.h"
#include "features/feature_vector.h"
#include "resources/fault_injection.h"
#include "resources/feature_service.h"
#include "resources/response_cache.h"
#include "synth/corpus_generator.h"
#include "util/result.h"

namespace crossmodal {

/// Owns a set of FeatureServices and the FeatureSchema their outputs form.
/// Feature i of the schema is produced by service i.
class ResourceRegistry {
 public:
  ResourceRegistry() = default;

  // Movable, not copyable (owns services; schema holds stable ids).
  ResourceRegistry(ResourceRegistry&&) = default;
  ResourceRegistry& operator=(ResourceRegistry&&) = default;

  /// Registers a service; its output feature is appended to the schema.
  /// Fails on duplicate feature names.
  [[nodiscard]] Status Register(FeatureServicePtr service);

  /// The induced common feature space.
  const FeatureSchema& schema() const { return schema_; }

  size_t size() const { return services_.size(); }

  /// The service producing feature `id`.
  const FeatureService& service(FeatureId id) const;

  /// Applies every applicable service to the entity, producing its row in
  /// the common feature space. Services that do not apply, abstain, or fail
  /// past their retry budget leave missing slots — an unavailable upstream
  /// degrades the row, never aborts it — and the per-service health
  /// counters record which of those happened.
  FeatureVector GenerateFeatures(const Entity& entity) const;

  /// Wraps every service matched by `plan` as
  /// Retrying(FaultInjecting(service)), sharing the registry's health
  /// counters. The wrapped services keep their FeatureDefs, so the schema
  /// and all FeatureIds are unchanged. Fails on a plan naming an unknown
  /// service, or if a fault layer is already installed.
  [[nodiscard]] Status InstallFaultLayer(const FaultPlan& plan);

  /// True once InstallFaultLayer has wrapped the services.
  bool fault_layer_installed() const { return fault_layer_installed_; }

  /// Fronts every service with a CachingService sharing one LRU
  /// ResponseCache of `capacity` entries (resources/response_cache.h).
  /// Install *after* any fault layer so the cache sits outermost — a hit
  /// must skip the retry/fault machinery, not replay it. Fails on capacity
  /// 0 or if a cache is already installed.
  [[nodiscard]] Status InstallResponseCache(size_t capacity);

  /// The shared cache, or nullptr when none is installed.
  const ResponseCache* response_cache() const {
    return response_cache_.get();
  }

  /// Health snapshot per service, index-aligned with the schema. Counter
  /// totals are schedule-independent whenever the installed plan is (see
  /// FaultPlan::IsScheduleDeterministic).
  std::vector<ServiceHealth> HealthSnapshot() const;

  /// Zeroes every health counter (e.g. between benchmark arms).
  void ResetHealth() const;

 private:
  std::vector<FeatureServicePtr> services_;
  /// One counter block per service, index-aligned with services_/schema_.
  /// unique_ptr keeps the registry movable (atomics are not).
  std::vector<std::unique_ptr<ServiceHealthCounters>> health_;
  FeatureSchema schema_;
  bool fault_layer_installed_ = false;
  std::unique_ptr<ResponseCache> response_cache_;
};

/// Builds the paper's 15-service registry (sets A/B/C/D) plus the three
/// image-specific services, wired against a task's synthetic world:
///   A: url_category, domain_reputation, share_velocity
///   B: keyword_topics, keyword_risk_flag
///   C: topic_primary, topic_secondary, content_category, sentiment, setting
///   D: page_category, kg_entities, object_labels, user_report_count,
///      content_risk_score (nonservable)
///   image: proprietary_embedding, generic_embedding, image_quality
[[nodiscard]] Result<ResourceRegistry> BuildModerationRegistry(const CorpusGenerator& gen,
                                                 uint64_t seed);

}  // namespace crossmodal

#endif  // CROSSMODAL_RESOURCES_REGISTRY_H_
