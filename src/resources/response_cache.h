// LRU cache for organizational service responses.
//
// The paper's feature space is recomputed every time an entity is touched;
// production feature infrastructure fronts the (slow, flaky) upstream
// services with a response cache instead. ResponseCache is that layer: a
// deterministic fixed-capacity LRU keyed by (service feature id, entity
// id), shared across every service of a registry, with CachingService as
// the per-service decorator installed outermost (a hit skips the retry and
// fault layers entirely — the cache-hit vs upstream-miss latency model the
// serving stack needs).
//
// Determinism rules (DESIGN.md "Response cache"):
//   * Services are pure functions of the entity, so a cached value always
//     equals what the upstream would return — artifact bytes are identical
//     with or without the cache, at any capacity.
//   * Only successful first attempts are cached; failures and retry
//     attempts (attempt > 0) always reach the upstream, so fault schedules
//     are undisturbed.
//   * Hit/miss/eviction *counters* are schedule-deterministic when feature
//     generation is serial or capacity covers the working set; under
//     parallel generation with an overflowing cache the recency order (and
//     hence the counts, never the values) depends on interleaving.

#ifndef CROSSMODAL_RESOURCES_RESPONSE_CACHE_H_
#define CROSSMODAL_RESOURCES_RESPONSE_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "features/feature_vector.h"
#include "resources/fault_injection.h"
#include "resources/feature_service.h"
#include "util/mutex.h"

namespace crossmodal {

/// Point-in-time cache statistics.
struct ResponseCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t capacity = 0;
};

/// Thread-safe fixed-capacity LRU of service responses. Eviction is purely
/// recency-based: inserting into a full cache evicts the least recently
/// used entry.
class ResponseCache {
 public:
  /// `capacity` must be > 0 (checked).
  explicit ResponseCache(size_t capacity);
  ResponseCache(const ResponseCache&) = delete;
  ResponseCache& operator=(const ResponseCache&) = delete;

  /// Copies the cached value for (service, entity) into `out` and marks it
  /// most recently used; false on miss. Also counts the hit/miss.
  bool Lookup(FeatureId service, EntityId entity, FeatureValue* out);

  /// Inserts or refreshes (service, entity) as most recently used,
  /// evicting the LRU entry when full.
  void Insert(FeatureId service, EntityId entity, FeatureValue value);

  ResponseCacheStats Stats() const;

  size_t capacity() const { return capacity_; }

 private:
  struct Key {
    FeatureId service = 0;
    EntityId entity = 0;
    bool operator==(const Key& other) const {
      return service == other.service && entity == other.entity;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // Mix the service id into the entity id (splitmix-style constant);
      // only distribution matters here, equality is exact.
      return static_cast<size_t>(
          (k.entity ^ (static_cast<uint64_t>(static_cast<uint32_t>(k.service)) *
                       0x9E3779B97F4A7C15ULL)));
    }
  };
  using LruList = std::list<std::pair<Key, FeatureValue>>;

  const size_t capacity_;
  mutable Mutex mu_{"response_cache"};
  /// Most recently used at the front.
  LruList lru_ CM_GUARDED_BY(mu_);
  std::unordered_map<Key, LruList::iterator, KeyHash> index_
      CM_GUARDED_BY(mu_);
  uint64_t hits_ CM_GUARDED_BY(mu_) = 0;
  uint64_t misses_ CM_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ CM_GUARDED_BY(mu_) = 0;
};

/// Decorator serving FeatureService calls from a shared ResponseCache.
/// Installed outermost (outside retry/fault layers): a hit answers without
/// touching them; a miss forwards, then caches a successful first attempt.
class CachingService : public FeatureService {
 public:
  /// `cache` must outlive the service; `counters` may be null and records
  /// cache_hits / cache_misses when provided.
  CachingService(FeatureServicePtr inner, FeatureId service_id,
                 ResponseCache* cache,
                 ServiceHealthCounters* counters = nullptr);

  const FeatureDef& output_def() const override {
    return inner_->output_def();
  }
  ResourceKind kind() const override { return inner_->kind(); }

  /// Degrades an inner failure to a missing value (like the fault layer).
  FeatureValue Apply(const Entity& entity) const override;

  using FeatureService::Call;
  [[nodiscard]] Result<FeatureValue> Call(const Entity& entity,
                                          int attempt) const override;

 private:
  FeatureServicePtr inner_;
  FeatureId service_id_;
  ResponseCache* cache_;
  ServiceHealthCounters* counters_;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_RESOURCES_RESPONSE_CACHE_H_
