// VideoFrameSplitter: tool that splits a video into representative image
// frames (§3.1.1), so image-era services and pipelines extend to video.

#ifndef CROSSMODAL_RESOURCES_FRAME_SPLITTER_H_
#define CROSSMODAL_RESOURCES_FRAME_SPLITTER_H_

#include <vector>

#include "synth/entity.h"
#include "util/result.h"

namespace crossmodal {

/// Splits video entities into per-frame image entities. Frame entities get
/// ids derived from the video id so downstream joins stay deterministic.
class VideoFrameSplitter {
 public:
  /// `max_frames` caps how many representative frames are emitted (0 = all).
  explicit VideoFrameSplitter(size_t max_frames = 0)
      : max_frames_(max_frames) {}

  /// Fails unless `video` is a video entity with at least one frame.
  [[nodiscard]] Result<std::vector<Entity>> Split(const Entity& video) const;

  /// Id of frame `k` of video `video_id` (stable derivation).
  static EntityId FrameId(EntityId video_id, size_t k);

 private:
  size_t max_frames_;
};

/// Pools per-frame feature rows into one video-level row in the common
/// feature space: categorical features take the union of frame categories,
/// numeric features the mean, embeddings the element-wise mean. This is how
/// a video inherits the image-era services (§3.1.1: split into frames, run
/// the image services, share the feature space).
FeatureVector AggregateFrameRows(const std::vector<FeatureVector>& frame_rows,
                                 const FeatureSchema& schema);

}  // namespace crossmodal

#endif  // CROSSMODAL_RESOURCES_FRAME_SPLITTER_H_
