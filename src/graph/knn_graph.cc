#include "graph/knn_graph.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace crossmodal {

size_t SimilarityGraph::num_edges() const {
  size_t total = 0;
  for (const auto& nbrs : adjacency) total += nbrs.size();
  return total / 2;
}

double SimilarityGraph::AverageDegree() const {
  if (nodes.empty()) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) /
         static_cast<double>(nodes.size());
}

Result<SimilarityGraph> BuildKnnGraph(const std::vector<EntityId>& entities,
                                      const FeatureStore& store,
                                      const FeatureSimilarity& similarity,
                                      const KnnGraphOptions& options) {
  const size_t n = entities.size();
  SimilarityGraph graph;
  graph.nodes = entities;
  graph.adjacency.assign(n, {});
  if (n == 0) return graph;

  std::vector<const FeatureVector*> rows(n);
  for (size_t i = 0; i < n; ++i) {
    CM_ASSIGN_OR_RETURN(rows[i], store.Get(entities[i]));
  }

  // ---- Blocking pass: inverted index over categorical items. ----------
  // Item key packs (feature id, category) into one 64-bit key.
  auto item_key = [](FeatureId f, int32_t c) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(f)) << 32) |
           static_cast<uint32_t>(c);
  };
  std::unordered_map<uint64_t, std::vector<uint32_t>> postings;
  for (size_t i = 0; i < n; ++i) {
    for (FeatureId f : similarity.features()) {
      const FeatureValue& v = rows[i]->Get(f);
      if (v.is_missing() || v.type() != FeatureType::kCategorical) continue;
      for (int32_t c : v.categories()) {
        postings[item_key(f, c)].push_back(static_cast<uint32_t>(i));
      }
    }
  }
  const size_t stop_threshold = std::max<size_t>(
      8, static_cast<size_t>(options.stop_item_fraction * n));

  // Top-k edge selection per node.
  std::vector<std::vector<std::pair<float, uint32_t>>> best(n);

  // Per-node selection only reads shared state (rows, postings) and writes
  // its own best[i] slot, so nodes are sliced across workers. Each node's
  // random candidates come from a seed derived from the node index — not a
  // shared stream — so the graph is bit-identical for every thread count.
  StagePool pool(options.parallel);
  constexpr size_t kSlices = 32;
  ForEachSlice(pool.get(), n, kSlices, [&](size_t, size_t begin, size_t end) {
    // Slice-owned scratch, allocated once per slice and reused across
    // nodes: candidate overlap counts, the reset list, the candidate set,
    // and the scoring buffer. Capacity is provisioned up front so the
    // per-node loop performs no heap traffic (cmrace: alloc-in-slice).
    std::vector<uint32_t> shared_count(n, 0);
    std::vector<uint32_t> touched;
    touched.reserve(n);
    std::vector<uint32_t> candidates;
    candidates.reserve(n);
    std::vector<std::pair<float, uint32_t>> scored;
    scored.reserve(n);
    for (size_t i = begin; i < end; ++i) {
      // Score candidates by number of shared items.
      touched.clear();
      for (FeatureId f : similarity.features()) {
        const FeatureValue& v = rows[i]->Get(f);
        if (v.is_missing() || v.type() != FeatureType::kCategorical) continue;
        for (int32_t c : v.categories()) {
          const auto& list = postings.at(item_key(f, c));
          if (list.size() > stop_threshold) continue;  // stop-item
          for (uint32_t j : list) {
            if (j == i) continue;
            if (shared_count[j] == 0) touched.push_back(j);
            ++shared_count[j];
          }
        }
      }
      // Keep the most-overlapping candidates plus random ones.
      candidates.assign(touched.begin(), touched.end());
      if (candidates.size() > options.max_candidates) {
        std::nth_element(
            candidates.begin(),
            candidates.begin() +
                static_cast<std::ptrdiff_t>(options.max_candidates),
            candidates.end(),
            [&](uint32_t a, uint32_t b) {
              // Strict total order (ties broken by node index):
              // with ties, the selected candidate set would be
              // implementation-defined, and the graph would not
              // be bit-identical across platforms/runs.
              if (shared_count[a] != shared_count[b]) {
                return shared_count[a] > shared_count[b];
              }
              return a < b;
            });
        candidates.resize(options.max_candidates);
      }
      for (uint32_t j : touched) shared_count[j] = 0;  // reset scratch
      Rng rng(DeriveSeed(options.seed, static_cast<uint64_t>(i)));
      for (size_t r = 0; r < options.random_candidates && n > 1; ++r) {
        const uint32_t j = static_cast<uint32_t>(rng.UniformInt(n));
        if (j != i) candidates.push_back(j);
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());

      // Exact Algorithm-1 weights; keep top-k above the floor. Scoring
      // happens in slice-owned scratch so best[i] is allocated exactly
      // once, at its final (pruned) size.
      scored.clear();
      for (uint32_t j : candidates) {
        const double w = similarity.Weight(*rows[i], *rows[j]);
        if (w < options.min_weight) continue;
        scored.emplace_back(static_cast<float>(w), j);
      }
      const size_t k = static_cast<size_t>(options.k);
      if (scored.size() > k) {
        std::nth_element(scored.begin(),
                         scored.begin() + static_cast<std::ptrdiff_t>(k),
                         scored.end(),
                         [](const std::pair<float, uint32_t>& a,
                            const std::pair<float, uint32_t>& b) {
                           // Weight descending, equal-weight ties broken by
                           // ascending node index (a strict total order, so
                           // the kept top-k set is uniquely determined).
                           if (a.first != b.first) return a.first > b.first;
                           return a.second < b.second;
                         });
        scored.resize(k);
      }
      best[i].assign(scored.begin(), scored.end());
    }
  });

  // Symmetrize: union of both directions.
  for (size_t i = 0; i < n; ++i) {
    for (const auto& [w, j] : best[i]) {
      CM_DCHECK_LT(j, n);
      CM_DCHECK_NE(static_cast<size_t>(j), i);
      graph.adjacency[i].emplace_back(j, w);
      graph.adjacency[j].emplace_back(static_cast<uint32_t>(i), w);
    }
  }
  for (auto& nbrs : graph.adjacency) {
    std::sort(nbrs.begin(), nbrs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    // Deduplicate (keep the max weight per neighbor).
    std::vector<std::pair<uint32_t, float>> dedup;
    for (const auto& e : nbrs) {
      if (!dedup.empty() && dedup.back().first == e.first) {
        dedup.back().second = std::max(dedup.back().second, e.second);
      } else {
        dedup.push_back(e);
      }
    }
    nbrs = std::move(dedup);
  }
  return graph;
}

}  // namespace crossmodal
