// Similarity search and clustering over the common feature space (§4.1:
// "the feature space we induce via organizational resources can be used for
// tasks including similarity search and clustering").
//
// SimilarityIndex answers top-k queries with the same blocked candidate
// generation the kNN graph builder uses; ClusterEntities runs k-means over
// encoder-densified rows (k-means++ init, deterministic). Typical uses:
// reviewer triage ("show me posts like this one") and near-duplicate
// grouping before labeling.

#ifndef CROSSMODAL_GRAPH_SIMILARITY_SEARCH_H_
#define CROSSMODAL_GRAPH_SIMILARITY_SEARCH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "features/feature_vector.h"
#include "graph/similarity.h"
#include "util/result.h"

namespace crossmodal {

/// One search hit.
struct Neighbor {
  EntityId entity = 0;
  double weight = 0.0;  ///< Algorithm-1 similarity in [0, 1].
};

/// Index parameters (mirroring KnnGraphOptions).
struct SimilarityIndexOptions {
  size_t max_candidates = 200;   ///< Exact evaluations per query.
  double stop_item_fraction = 0.08;
  double min_weight = 0.0;       ///< Hits below this are dropped.
  uint64_t seed = 0x1DE1;
  size_t random_candidates = 8;  ///< Random extras per query.
};

/// Immutable top-k index over a fixed entity set.
class SimilarityIndex {
 public:
  /// Builds the inverted-index blocking structure. Every entity must have a
  /// row in `store`; `similarity` should already be normalization-fitted.
  [[nodiscard]] static Result<SimilarityIndex> Build(const std::vector<EntityId>& entities,
                                       const FeatureStore& store,
                                       FeatureSimilarity similarity,
                                       SimilarityIndexOptions options =
                                           SimilarityIndexOptions());

  /// Top-k most similar indexed entities to `row` (descending weight).
  /// The query row need not belong to the index.
  std::vector<Neighbor> Query(const FeatureVector& row, size_t k) const;

  size_t size() const { return entities_.size(); }

 private:
  SimilarityIndex(std::vector<EntityId> entities,
                  std::vector<const FeatureVector*> rows,
                  FeatureSimilarity similarity,
                  SimilarityIndexOptions options);

  std::vector<EntityId> entities_;
  std::vector<const FeatureVector*> rows_;
  FeatureSimilarity similarity_;
  SimilarityIndexOptions options_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> postings_;
  size_t stop_threshold_ = 0;
};

/// K-means clustering output.
struct Clustering {
  std::vector<int> assignment;      ///< Parallel to the input entity list.
  std::vector<std::vector<double>> centroids;
  double inertia = 0.0;             ///< Sum of squared distances.
  int iterations = 0;
};

/// Clusters entities by k-means over their encoded feature rows (features
/// chosen by `features`; rows densified through a FeatureEncoder fit on the
/// same rows). Deterministic k-means++ seeding. Fails when k exceeds the
/// number of entities or the rows cannot be encoded.
[[nodiscard]] Result<Clustering> ClusterEntities(const std::vector<EntityId>& entities,
                                   const FeatureStore& store,
                                   const std::vector<FeatureId>& features,
                                   int k, int max_iterations = 50,
                                   uint64_t seed = 0xC1u);

}  // namespace crossmodal

#endif  // CROSSMODAL_GRAPH_SIMILARITY_SEARCH_H_
