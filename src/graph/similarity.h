// Pairwise entity similarity from the common feature space (Algorithm 1).
//
// The paper's Algorithm 1 accumulates per-feature contributions — a norm for
// numeric features, Jaccard for categorical — normalized per feature (the
// normalization the paper notes it omits "for simplicity" in the listing).
// We implement the normalized form: each feature contributes a similarity in
// [0, 1] (categorical: Jaccard; numeric: exp(-|delta|/scale); embedding:
// rescaled cosine), and the edge weight is the mean over features present in
// both points.

#ifndef CROSSMODAL_GRAPH_SIMILARITY_H_
#define CROSSMODAL_GRAPH_SIMILARITY_H_

#include <vector>

#include "features/feature_schema.h"
#include "features/feature_vector.h"

namespace crossmodal {

/// Computes Algorithm-1 edge weights over a chosen feature subset.
class FeatureSimilarity {
 public:
  /// Uses features `features` of `schema` for the weight computation.
  FeatureSimilarity(const FeatureSchema* schema,
                    std::vector<FeatureId> features);

  /// Estimates per-numeric-feature scales (robust std) from sample rows so
  /// numeric distances are comparable across features. Must be called before
  /// Weight() if any numeric feature is used; no-op otherwise.
  void FitNormalization(const std::vector<const FeatureVector*>& rows);

  /// Edge weight w_ij in [0, 1]; 0 when no feature is present in both rows.
  double Weight(const FeatureVector& a, const FeatureVector& b) const;

  const std::vector<FeatureId>& features() const { return features_; }

 private:
  const FeatureSchema* schema_;
  std::vector<FeatureId> features_;
  std::vector<double> numeric_scale_;  // parallel to features_; 1.0 default
};

/// Cosine similarity of two equal-length float vectors, in [-1, 1].
double CosineSimilarity(const std::vector<float>& a,
                        const std::vector<float>& b);

}  // namespace crossmodal

#endif  // CROSSMODAL_GRAPH_SIMILARITY_H_
