// Label propagation over the similarity graph (§4.4; Zhu & Ghahramani).
//
// Labeled seed nodes are clamped; every unlabeled node iteratively takes the
// weighted average of its neighbors' scores until convergence. The resulting
// scores identify borderline positives/negatives in the new modality that
// share feature-space neighborhoods with labeled old-modality examples, and
// are turned into a threshold LF (thresholds tuned on held-out labeled data
// of the existing modalities).

#ifndef CROSSMODAL_GRAPH_LABEL_PROPAGATION_H_
#define CROSSMODAL_GRAPH_LABEL_PROPAGATION_H_

#include <unordered_map>
#include <vector>

#include "graph/knn_graph.h"
#include "labeling/labeling_function.h"
#include "util/parallel.h"
#include "util/result.h"

namespace crossmodal {

/// Propagation parameters.
struct PropagationOptions {
  int max_iterations = 60;
  double tolerance = 1e-4;  ///< Max per-node delta to declare convergence.
  /// Blend toward the prior: score = alpha * neighborhood_avg +
  /// (1 - alpha) * prior. alpha = 1 is pure Zhu–Ghahramani.
  double alpha = 0.95;
  double prior = 0.1;  ///< Initial/fallback score for unlabeled nodes.
  /// The per-node sweep is sliced across this many workers. Scores are
  /// double-buffered (every node reads the previous iteration's buffer and
  /// writes only its own slot), so iteration order cannot leak into the
  /// results and every thread count is bit-identical.
  ParallelConfig parallel;
};

/// Outcome of a propagation run.
struct PropagationResult {
  /// Converged score in [0, 1] per node (seeds keep their clamped value).
  std::unordered_map<EntityId, double> scores;
  int iterations = 0;
  double final_delta = 0.0;
  bool converged = false;
};

/// Runs label propagation. `seeds` maps labeled entities (graph nodes) to
/// their label in {0, 1}. Fails when the graph is empty or no seed matches
/// a node.
[[nodiscard]] Result<PropagationResult> PropagateLabels(
    const SimilarityGraph& graph,
    const std::unordered_map<EntityId, double>& seeds,
    const PropagationOptions& options = PropagationOptions());

// The distributed (MapReduce) variant lives one layer up, in
// dataflow/distributed_propagation.h, so graph/ never depends on dataflow/.

/// Tuned LF thresholds from held-out labeled scores.
struct ScoreThresholds {
  double positive = 1.0;  ///< Score at/above which the LF votes positive.
  double negative = 0.0;  ///< Score at/below which the LF votes negative.
};

/// Picks the smallest positive threshold whose precision on the held-out
/// (score, label) pairs reaches `target_precision_pos`, and symmetrically
/// the largest negative threshold reaching `target_precision_neg`. Falls
/// back to extreme thresholds (LF abstains) when no threshold qualifies.
ScoreThresholds TuneScoreThresholds(
    const std::vector<std::pair<double, int>>& holdout,
    double target_precision_pos, double target_precision_neg);

/// One weighted holdout point for threshold tuning.
struct WeightedScore {
  double score = 0.0;
  int label = 0;
  double weight = 1.0;  ///< Inverse-sampling weight (stratified holdouts).
};

/// Weighted variant: precision is computed over point weights, so a
/// class-stratified holdout can be corrected back to the natural class mix.
ScoreThresholds TuneScoreThresholds(const std::vector<WeightedScore>& holdout,
                                    double target_precision_pos,
                                    double target_precision_neg);

}  // namespace crossmodal

#endif  // CROSSMODAL_GRAPH_LABEL_PROPAGATION_H_
