#include "graph/label_propagation.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace crossmodal {

Result<PropagationResult> PropagateLabels(
    const SimilarityGraph& graph,
    const std::unordered_map<EntityId, double>& seeds,
    const PropagationOptions& options) {
  const size_t n = graph.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");

  std::vector<double> score(n, options.prior);
  std::vector<char> clamped(n, 0);
  size_t num_seeds = 0;
  for (size_t i = 0; i < n; ++i) {
    auto it = seeds.find(graph.nodes[i]);
    if (it != seeds.end()) {
      score[i] = it->second;
      clamped[i] = 1;
      ++num_seeds;
    }
  }
  if (num_seeds == 0) {
    return Status::FailedPrecondition("no seed label matches a graph node");
  }

  PropagationResult result;
  std::vector<double> next(n);
  // Double-buffered sweep: every node reads only `score` (the previous
  // iteration) and writes only its own `next` slot, so slices are
  // independent and the sweep is bit-identical at any thread count. The
  // convergence delta reduces through per-slice maxima combined in slice
  // order (max is order-insensitive anyway; the fixed order keeps the
  // reduction structurally deterministic).
  StagePool stage_pool(options.parallel);
  constexpr size_t kSlices = 32;
  std::vector<double> slice_delta(kSlices);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    std::fill(slice_delta.begin(), slice_delta.end(), 0.0);
    ForEachSlice(stage_pool.get(), n, kSlices,
                 [&](size_t slice, size_t begin, size_t end) {
      double local_delta = 0.0;
      for (size_t i = begin; i < end; ++i) {
        if (clamped[i]) {
          next[i] = score[i];
          continue;
        }
        double weighted = 0.0;
        double total = 0.0;
        for (const auto& [j, w] : graph.adjacency[i]) {
          weighted += static_cast<double>(w) * score[j];
          total += w;
        }
        const double neighborhood =
            total > 0.0 ? weighted / total : options.prior;
        next[i] = options.alpha * neighborhood +
                  (1.0 - options.alpha) * options.prior;
        local_delta = std::max(local_delta, std::abs(next[i] - score[i]));
      }
      slice_delta[slice] = local_delta;
    });
    double max_delta = 0.0;
    for (double d : slice_delta) max_delta = std::max(max_delta, d);
    score.swap(next);
    result.final_delta = max_delta;
    if (max_delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.scores.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    result.scores.emplace(graph.nodes[i], score[i]);
  }
  return result;
}

ScoreThresholds TuneScoreThresholds(
    const std::vector<std::pair<double, int>>& holdout,
    double target_precision_pos, double target_precision_neg) {
  std::vector<WeightedScore> weighted;
  weighted.reserve(holdout.size());
  for (const auto& [score, label] : holdout) {
    weighted.push_back(WeightedScore{score, label, 1.0});
  }
  return TuneScoreThresholds(weighted, target_precision_pos,
                             target_precision_neg);
}

ScoreThresholds TuneScoreThresholds(const std::vector<WeightedScore>& holdout,
                                    double target_precision_pos,
                                    double target_precision_neg) {
  ScoreThresholds out;
  out.positive = std::numeric_limits<double>::infinity();
  out.negative = -std::numeric_limits<double>::infinity();
  if (holdout.empty()) return out;

  std::vector<WeightedScore> sorted = holdout;
  std::sort(sorted.begin(), sorted.end(),
            [](const WeightedScore& a, const WeightedScore& b) {
              return a.score < b.score;
            });

  // Positive threshold: walk from the highest score down, tracking the
  // (weighted) precision of "predict positive at >= threshold"; keep the
  // lowest threshold that still meets the target.
  double tp = 0.0, fp = 0.0;
  for (size_t i = sorted.size(); i-- > 0;) {
    (sorted[i].label == 1 ? tp : fp) += sorted[i].weight;
    const double precision = tp / (tp + fp);
    if (precision >= target_precision_pos) {
      out.positive = sorted[i].score;
    }
  }
  // Negative threshold: symmetric from the lowest score up.
  double tn = 0.0, fn = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    (sorted[i].label == 0 ? tn : fn) += sorted[i].weight;
    const double precision = tn / (tn + fn);
    if (precision >= target_precision_neg) {
      out.negative = sorted[i].score;
    }
  }
  // Keep the bands disjoint.
  if (out.negative >= out.positive) {
    const double mid = 0.5 * (out.negative + out.positive);
    out.negative = std::nextafter(mid, -1e300);
    out.positive = std::nextafter(mid, 1e300);
  }
  return out;
}

}  // namespace crossmodal
