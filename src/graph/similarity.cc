#include "graph/similarity.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace crossmodal {

double CosineSimilarity(const std::vector<float>& a,
                        const std::vector<float>& b) {
  CM_CHECK(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  if (denom <= 0.0) return 0.0;
  return dot / denom;
}

FeatureSimilarity::FeatureSimilarity(const FeatureSchema* schema,
                                     std::vector<FeatureId> features)
    : schema_(schema), features_(std::move(features)) {
  CM_CHECK(schema_ != nullptr);
  numeric_scale_.assign(features_.size(), 1.0);
}

void FeatureSimilarity::FitNormalization(
    const std::vector<const FeatureVector*>& rows) {
  for (size_t idx = 0; idx < features_.size(); ++idx) {
    const FeatureId f = features_[idx];
    if (schema_->def(f).type != FeatureType::kNumeric) continue;
    double sum = 0.0, sum_sq = 0.0;
    size_t count = 0;
    for (const auto* row : rows) {
      const FeatureValue& v = row->Get(f);
      if (v.is_missing() || v.type() != FeatureType::kNumeric) continue;
      sum += v.numeric();
      sum_sq += v.numeric() * v.numeric();
      ++count;
    }
    if (count >= 2) {
      const double mean = sum / count;
      const double var = std::max(0.0, sum_sq / count - mean * mean);
      numeric_scale_[idx] = std::max(1e-6, std::sqrt(var));
    }
  }
}

double FeatureSimilarity::Weight(const FeatureVector& a,
                                 const FeatureVector& b) const {
  double total = 0.0;
  size_t present = 0;
  for (size_t idx = 0; idx < features_.size(); ++idx) {
    const FeatureId f = features_[idx];
    const FeatureValue& va = a.Get(f);
    const FeatureValue& vb = b.Get(f);
    if (va.is_missing() || vb.is_missing()) continue;
    if (va.type() != vb.type()) continue;
    double sim = 0.0;
    switch (va.type()) {
      case FeatureType::kCategorical:
        sim = FeatureValue::Jaccard(va, vb);
        break;
      case FeatureType::kNumeric: {
        const double d =
            std::abs(va.numeric() - vb.numeric()) / numeric_scale_[idx];
        sim = std::exp(-d);
        break;
      }
      case FeatureType::kEmbedding: {
        if (va.embedding().size() != vb.embedding().size()) continue;
        sim = 0.5 * (1.0 + CosineSimilarity(va.embedding(), vb.embedding()));
        break;
      }
    }
    total += sim;
    ++present;
  }
  return present == 0 ? 0.0 : total / static_cast<double>(present);
}

}  // namespace crossmodal
