#include "graph/similarity_search.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ml/encoder.h"
#include "util/logging.h"
#include "util/random.h"

namespace crossmodal {

namespace {
uint64_t ItemKey(FeatureId f, int32_t c) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(f)) << 32) |
         static_cast<uint32_t>(c);
}
}  // namespace

SimilarityIndex::SimilarityIndex(std::vector<EntityId> entities,
                                 std::vector<const FeatureVector*> rows,
                                 FeatureSimilarity similarity,
                                 SimilarityIndexOptions options)
    : entities_(std::move(entities)),
      rows_(std::move(rows)),
      similarity_(std::move(similarity)),
      options_(options) {
  for (size_t i = 0; i < rows_.size(); ++i) {
    for (FeatureId f : similarity_.features()) {
      const FeatureValue& v = rows_[i]->Get(f);
      if (v.is_missing() || v.type() != FeatureType::kCategorical) continue;
      for (int32_t c : v.categories()) {
        postings_[ItemKey(f, c)].push_back(static_cast<uint32_t>(i));
      }
    }
  }
  stop_threshold_ = std::max<size_t>(
      8, static_cast<size_t>(options_.stop_item_fraction * rows_.size()));
}

Result<SimilarityIndex> SimilarityIndex::Build(
    const std::vector<EntityId>& entities, const FeatureStore& store,
    FeatureSimilarity similarity, SimilarityIndexOptions options) {
  std::vector<const FeatureVector*> rows(entities.size());
  for (size_t i = 0; i < entities.size(); ++i) {
    CM_ASSIGN_OR_RETURN(rows[i], store.Get(entities[i]));
  }
  return SimilarityIndex(entities, std::move(rows), std::move(similarity),
                         options);
}

std::vector<Neighbor> SimilarityIndex::Query(const FeatureVector& row,
                                             size_t k) const {
  // Candidate generation: entities sharing non-stop categorical items.
  std::unordered_map<uint32_t, uint32_t> shared;
  for (FeatureId f : similarity_.features()) {
    const FeatureValue& v = row.Get(f);
    if (v.is_missing() || v.type() != FeatureType::kCategorical) continue;
    for (int32_t c : v.categories()) {
      auto it = postings_.find(ItemKey(f, c));
      if (it == postings_.end() || it->second.size() > stop_threshold_) {
        continue;
      }
      for (uint32_t i : it->second) shared[i]++;
    }
  }
  std::vector<std::pair<uint32_t, uint32_t>> candidates(shared.begin(),
                                                        shared.end());
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (candidates.size() > options_.max_candidates) {
    candidates.resize(options_.max_candidates);
  }
  // Random extras keep queries working when the row shares no rare item.
  Rng rng(DeriveSeed(options_.seed, candidates.size()));
  for (size_t r = 0; r < options_.random_candidates && !rows_.empty(); ++r) {
    candidates.emplace_back(
        static_cast<uint32_t>(rng.UniformInt(rows_.size())), 0);
  }

  std::vector<Neighbor> hits;
  std::vector<char> seen(rows_.size(), 0);
  for (const auto& [i, count] : candidates) {
    if (seen[i]) continue;
    seen[i] = 1;
    const double w = similarity_.Weight(row, *rows_[i]);
    if (w < options_.min_weight) continue;
    hits.push_back(Neighbor{entities_[i], w});
  }
  std::sort(hits.begin(), hits.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.entity < b.entity;
  });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

Result<Clustering> ClusterEntities(const std::vector<EntityId>& entities,
                                   const FeatureStore& store,
                                   const std::vector<FeatureId>& features,
                                   int k, int max_iterations, uint64_t seed) {
  if (k <= 0 || static_cast<size_t>(k) > entities.size()) {
    return Status::InvalidArgument("k must be in [1, n]");
  }
  std::vector<const FeatureVector*> rows(entities.size());
  for (size_t i = 0; i < entities.size(); ++i) {
    CM_ASSIGN_OR_RETURN(rows[i], store.Get(entities[i]));
  }
  EncoderOptions enc_options;
  enc_options.features = features;
  CM_ASSIGN_OR_RETURN(FeatureEncoder encoder,
                      FeatureEncoder::Fit(store.schema(), rows,
                                          std::move(enc_options)));
  // Densify.
  const size_t dim = encoder.dim();
  std::vector<std::vector<double>> points(rows.size(),
                                          std::vector<double>(dim, 0.0));
  for (size_t i = 0; i < rows.size(); ++i) {
    for (const auto& [idx, value] : encoder.Encode(*rows[i]).entries) {
      points[i][idx] = value;
    }
  }

  auto distance_sq = [&](const std::vector<double>& a,
                         const std::vector<double>& b) {
    double total = 0.0;
    for (size_t d = 0; d < a.size(); ++d) {
      const double diff = a[d] - b[d];
      total += diff * diff;
    }
    return total;
  };

  // k-means++ seeding (deterministic).
  Clustering result;
  Rng rng(seed);
  result.centroids.push_back(points[rng.UniformInt(points.size())]);
  std::vector<double> min_dist(points.size(),
                               std::numeric_limits<double>::infinity());
  while (result.centroids.size() < static_cast<size_t>(k)) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      min_dist[i] = std::min(min_dist[i],
                             distance_sq(points[i], result.centroids.back()));
      total += min_dist[i];
    }
    if (total <= 0.0) {
      // Degenerate: all points identical; duplicate the centroid.
      result.centroids.push_back(result.centroids.back());
      continue;
    }
    double r = rng.Uniform() * total;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      r -= min_dist[i];
      if (r < 0.0) {
        chosen = i;
        break;
      }
    }
    result.centroids.push_back(points[chosen]);
  }

  // Lloyd iterations.
  result.assignment.assign(points.size(), 0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    result.iterations = iter + 1;
    bool changed = false;
    result.inertia = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        const double d =
            distance_sq(points[i], result.centroids[static_cast<size_t>(c)]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
      result.inertia += best_d;
    }
    if (!changed) break;
    // Recompute centroids.
    std::vector<std::vector<double>> sums(
        static_cast<size_t>(k), std::vector<double>(dim, 0.0));
    std::vector<size_t> counts(static_cast<size_t>(k), 0);
    for (size_t i = 0; i < points.size(); ++i) {
      const auto c = static_cast<size_t>(result.assignment[i]);
      ++counts[c];
      for (size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    for (size_t c = 0; c < static_cast<size_t>(k); ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      for (size_t d = 0; d < dim; ++d) {
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }
  return result;
}

}  // namespace crossmodal
