// CorpusGenerator: draws deterministic synthetic task corpora.
//
// Generative story (per entity): draw the ground-truth label y from the
// task's positive rate, then draw latent semantics conditioned on y with
// task-specific channel signal strengths. Positives split into "blatant"
// (high intensity — trip rule flags and concentrated itemsets) and
// "borderline" (low intensity — share semantics with blatant positives but
// carry no flags, reachable via embedding similarity / label propagation).
// Image corpora are drawn under a rotated background prior and dampened
// signals, producing the paper's cross-modality distribution shift (§6.6).

#ifndef CROSSMODAL_SYNTH_CORPUS_GENERATOR_H_
#define CROSSMODAL_SYNTH_CORPUS_GENERATOR_H_

#include <vector>

#include "synth/entity.h"
#include "synth/task_spec.h"
#include "synth/world_config.h"
#include "util/random.h"

namespace crossmodal {

/// Deterministic generator for one task's corpus. All draws derive from
/// TaskSpec::seed; two generators with equal configs produce identical
/// corpora.
class CorpusGenerator {
 public:
  CorpusGenerator(const WorldConfig& world, const TaskSpec& task);

  /// Generates the full corpus (Table 1 splits). Labeled text carries human
  /// labels (ground truth flipped with probability label_noise); image
  /// entities carry exact ground truth, which the pipeline may consult only
  /// for supervised pools and test evaluation.
  Corpus Generate() const;

  /// Draws one entity of the given modality and class. Exposed for tests,
  /// examples, and streaming scenarios.
  Entity MakeEntity(Modality modality, bool positive, EntityId id,
                    int64_t timestamp, Rng* rng) const;

  /// Draws a video entity: base latents plus `num_frames` per-frame latents
  /// jittered from the base (consumed by the frame-splitter service).
  Entity MakeVideoEntity(bool positive, EntityId id, int64_t timestamp,
                         int num_frames, Rng* rng) const;

  /// The task-specific risky vocabulary subsets (exposed so "domain expert"
  /// baselines in benches can write rules against true semantics).
  const std::vector<int32_t>& risky_topics() const { return risky_topics_; }
  const std::vector<int32_t>& risky_objects() const { return risky_objects_; }
  const std::vector<int32_t>& risky_keywords() const {
    return risky_keywords_;
  }
  const std::vector<int32_t>& risky_url_categories() const {
    return risky_url_cats_;
  }
  const std::vector<int32_t>& risky_page_categories() const {
    return risky_page_cats_;
  }
  const std::vector<int32_t>& risky_kg_entities() const { return risky_kg_; }

  const WorldConfig& world() const { return world_; }
  const TaskSpec& task() const { return task_; }

 private:
  /// Samples from a vocabulary under a Zipf background prior; image
  /// modalities use a rotated order (covariate shift).
  int32_t DrawBackground(int32_t vocab, Modality m, Rng* rng) const;

  /// Samples from a risky subset under a concentrated (Zipf) prior.
  int32_t DrawRisky(const std::vector<int32_t>& risky, Rng* rng) const;

  /// Effective channel signal for a modality (image channels dampened).
  double Signal(double base, Modality m) const;

  void FillLatent(LatentEntity* latent, Modality m, bool positive,
                  Rng* rng) const;

  /// Computes the latent semantic vector from the discrete latents.
  std::vector<float> ComputeSemantic(const LatentEntity& latent) const;

  WorldConfig world_;
  TaskSpec task_;

  std::vector<int32_t> risky_topics_, risky_objects_, risky_keywords_;
  std::vector<int32_t> risky_url_cats_, risky_page_cats_, risky_domains_;
  std::vector<int32_t> risky_kg_;
  // Image-specific violation modes (drawn for the 1 - risky_overlap
  // fraction of image positives).
  std::vector<int32_t> image_risky_topics_, image_risky_objects_,
      image_risky_keywords_, image_risky_kg_, image_risky_page_cats_,
      image_risky_url_cats_, image_risky_domains_;

  // Fixed random projection tables for the semantic vector.
  std::vector<std::vector<float>> topic_proj_, object_proj_, keyword_proj_;
  std::vector<float> intensity_dir_, risk_dir_;

  // Zipf background weights (natural order for text; rotation applied for
  // image at draw time).
  std::vector<double> zipf_cache_;
  int32_t image_rotation_ = 0;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_SYNTH_CORPUS_GENERATOR_H_
