#include "synth/task_spec.h"

#include <algorithm>

#include "util/logging.h"

namespace crossmodal {

TaskSpec TaskSpec::Scaled(double factor) const {
  TaskSpec out = *this;
  auto scale = [factor](size_t n) {
    return std::max<size_t>(100, static_cast<size_t>(n * factor));
  };
  out.n_text_labeled = scale(n_text_labeled);
  out.n_image_unlabeled = scale(n_image_unlabeled);
  out.n_image_pool = scale(n_image_pool);
  out.n_image_test = scale(n_image_test);
  return out;
}

TaskSpec TaskSpec::CT(int k) {
  CM_CHECK(k >= 1 && k <= 5) << "CT preset must be in [1,5], got " << k;
  TaskSpec s;
  s.id = k;
  s.name = "CT " + std::to_string(k);
  s.seed = 0xC0DE0000ULL + static_cast<uint64_t>(k);
  switch (k) {
    case 1:
      // Table 1: 18M text / 7.2M unlabeled image / 17k test / 4.1% pos.
      // Mid-difficulty task: clear positive modes plus a borderline tail.
      s.n_text_labeled = 18000;
      s.n_image_unlabeled = 7200;
      s.n_image_pool = 4000;
      s.n_image_test = 3000;
      s.pos_rate = 0.041;
      s.topic_signal = 0.62;
      s.object_signal = 0.55;
      s.keyword_signal = 0.50;
      s.url_signal = 0.48;
      s.user_signal = 0.52;
      s.page_signal = 0.50;
      s.easy_pos_frac = 0.55;
      s.contamination = 0.040;
      s.modality_shift = 0.35;
      s.image_signal_damp = 0.20;
      s.risky_overlap = 0.45;
      s.embedding_alignment = 1.30;
      break;
    case 2:
      // Table 1: 26M / 7.4M / 203k / 9.3%. "Easy" positive class: itemset
      // mining alone captures it (Table 3 shows no label-propagation lift).
      s.n_text_labeled = 26000;
      s.n_image_unlabeled = 7400;
      s.n_image_pool = 4000;
      s.n_image_test = 4000;
      s.pos_rate = 0.093;
      s.topic_signal = 0.85;
      s.object_signal = 0.80;
      s.keyword_signal = 0.75;
      s.url_signal = 0.65;
      s.user_signal = 0.60;
      s.page_signal = 0.70;
      s.easy_pos_frac = 0.95;
      s.contamination = 0.030;
      s.modality_shift = 0.25;
      s.image_signal_damp = 0.15;
      s.risky_overlap = 0.80;
      s.embedding_alignment = 0.30;
      break;
    case 3:
      // Table 1: 19M / 7.4M / 201k / 3.2%. Hard task: weak channels, text
      // model transfers below the embedding baseline (Table 2: 0.88).
      s.n_text_labeled = 19000;
      s.n_image_unlabeled = 7400;
      s.n_image_pool = 6000;
      s.n_image_test = 4000;
      s.pos_rate = 0.032;
      s.topic_signal = 0.47;
      s.object_signal = 0.45;
      s.keyword_signal = 0.43;
      s.url_signal = 0.35;
      s.user_signal = 0.50;
      s.page_signal = 0.38;
      s.easy_pos_frac = 0.45;
      s.contamination = 0.060;
      s.modality_shift = 0.55;
      s.image_signal_damp = 0.20;
      s.risky_overlap = 0.42;
      s.embedding_alignment = 1.60;
      break;
    case 4:
      // Table 1: 25M / 7.3M / 139k / 0.9%. Scaled 1:400 (not 1:1000) so the
      // test set keeps >=250 positives; AUPRC ratios are hopeless below that. Heavily imbalanced; blatant
      // positives are rare, so mined LFs have tiny recall and label
      // propagation lifts recall by orders of magnitude (Table 3: 162x).
      s.n_text_labeled = 62500;
      s.n_image_unlabeled = 18250;
      s.n_image_pool = 7500;
      s.n_image_test = 30000;
      s.pos_rate = 0.009;
      s.topic_signal = 0.50;
      s.object_signal = 0.60;
      s.keyword_signal = 0.55;
      s.url_signal = 0.35;
      s.user_signal = 0.55;
      s.page_signal = 0.40;
      s.easy_pos_frac = 0.05;
      s.contamination = 0.022;
      s.modality_shift = 0.40;
      s.image_signal_damp = 0.20;
      s.risky_overlap = 0.40;
      s.embedding_alignment = 1.00;
      break;
    case 5:
      // Table 1: 25M / 7.4M / 203k / 6.9%. Latest cross-over in the paper
      // (750k): the supervised image channel is noisy, so hand labels pay
      // off very slowly, while LFs + propagation remain strong.
      s.n_text_labeled = 25000;
      s.n_image_unlabeled = 7400;
      s.n_image_pool = 9000;
      s.n_image_test = 4000;
      s.pos_rate = 0.069;
      s.topic_signal = 0.70;
      s.object_signal = 0.60;
      s.keyword_signal = 0.60;
      s.url_signal = 0.50;
      s.user_signal = 0.55;
      s.page_signal = 0.55;
      s.easy_pos_frac = 0.40;
      s.contamination = 0.045;
      s.modality_shift = 0.30;
      s.image_signal_damp = 0.35;
      s.risky_overlap = 0.45;
      s.embedding_alignment = 0.80;
      break;
    default:
      break;
  }
  return s;
}

}  // namespace crossmodal
