#include "synth/corpus_generator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace crossmodal {

namespace {

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

/// Knuth's Poisson sampler; fine for the small rates used here.
int32_t SamplePoisson(Rng* rng, double lambda) {
  CM_CHECK(lambda >= 0.0);
  const double limit = std::exp(-lambda);
  double p = 1.0;
  int32_t k = 0;
  do {
    ++k;
    p *= rng->Uniform();
  } while (p > limit && k < 1000);
  return k - 1;
}

/// Samples k distinct values out of [0, vocab).
std::vector<int32_t> SampleRiskySubset(uint64_t seed, int32_t vocab,
                                       double fraction) {
  const size_t k = std::max<size_t>(
      3, static_cast<size_t>(std::lround(vocab * fraction)));
  Rng rng(seed);
  auto idx = rng.SampleWithoutReplacement(static_cast<size_t>(vocab),
                                          std::min<size_t>(k, vocab));
  std::vector<int32_t> out(idx.size());
  for (size_t i = 0; i < idx.size(); ++i) out[i] = static_cast<int32_t>(idx[i]);
  std::sort(out.begin(), out.end());
  return out;
}

/// Samples a risky subset disjoint from `exclude` (image-specific modes).
std::vector<int32_t> SampleDisjointSubset(uint64_t seed, int32_t vocab,
                                          double fraction,
                                          const std::vector<int32_t>& exclude) {
  const size_t k = std::max<size_t>(
      3, static_cast<size_t>(std::lround(vocab * fraction)));
  Rng rng(seed);
  std::vector<int32_t> out;
  size_t attempts = 0;
  while (out.size() < k && attempts < 64 * k) {
    ++attempts;
    const int32_t v =
        static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(vocab)));
    if (std::binary_search(exclude.begin(), exclude.end(), v)) continue;
    if (std::find(out.begin(), out.end(), v) != out.end()) continue;
    out.push_back(v);
  }
  if (out.empty()) out.push_back(0);  // degenerate vocab fallback
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<float> RandomUnitVector(Rng* rng, int dim) {
  std::vector<float> v(dim);
  double norm_sq = 0.0;
  for (int i = 0; i < dim; ++i) {
    v[i] = static_cast<float>(rng->Normal());
    norm_sq += static_cast<double>(v[i]) * v[i];
  }
  const float inv = static_cast<float>(1.0 / std::sqrt(std::max(norm_sq, 1e-12)));
  for (auto& x : v) x *= inv;
  return v;
}

std::vector<std::vector<float>> ProjectionTable(uint64_t seed, int count,
                                                int dim) {
  Rng rng(seed);
  std::vector<std::vector<float>> table(count);
  for (auto& row : table) row = RandomUnitVector(&rng, dim);
  return table;
}

}  // namespace

CorpusGenerator::CorpusGenerator(const WorldConfig& world, const TaskSpec& task)
    : world_(world), task_(task) {
  const uint64_t s = task_.seed;
  const double f = world_.risky_vocab_fraction;
  risky_topics_ = SampleRiskySubset(DeriveSeed(s, "risky_topics"),
                                    world_.num_topics, f);
  risky_objects_ = SampleRiskySubset(DeriveSeed(s, "risky_objects"),
                                     world_.num_objects, f);
  risky_keywords_ = SampleRiskySubset(DeriveSeed(s, "risky_keywords"),
                                      world_.num_keywords, f);
  risky_url_cats_ = SampleRiskySubset(DeriveSeed(s, "risky_url_cats"),
                                      world_.num_url_categories, f);
  risky_page_cats_ = SampleRiskySubset(DeriveSeed(s, "risky_page_cats"),
                                       world_.num_page_categories, f);
  risky_domains_ = SampleRiskySubset(DeriveSeed(s, "risky_domains"),
                                     world_.num_domains, f);
  risky_kg_ = SampleRiskySubset(DeriveSeed(s, "risky_kg"),
                                world_.num_kg_entities, f);
  // Image-specific violation modes, disjoint from the shared subsets.
  image_risky_topics_ = SampleDisjointSubset(
      DeriveSeed(s, "img_risky_topics"), world_.num_topics, f, risky_topics_);
  image_risky_objects_ =
      SampleDisjointSubset(DeriveSeed(s, "img_risky_objects"),
                           world_.num_objects, f, risky_objects_);
  image_risky_keywords_ =
      SampleDisjointSubset(DeriveSeed(s, "img_risky_keywords"),
                           world_.num_keywords, f, risky_keywords_);
  image_risky_kg_ = SampleDisjointSubset(DeriveSeed(s, "img_risky_kg"),
                                         world_.num_kg_entities, f, risky_kg_);
  image_risky_page_cats_ =
      SampleDisjointSubset(DeriveSeed(s, "img_risky_pages"),
                           world_.num_page_categories, f, risky_page_cats_);
  image_risky_url_cats_ =
      SampleDisjointSubset(DeriveSeed(s, "img_risky_urls"),
                           world_.num_url_categories, f, risky_url_cats_);
  image_risky_domains_ =
      SampleDisjointSubset(DeriveSeed(s, "img_risky_domains"),
                           world_.num_domains, f, risky_domains_);

  topic_proj_ = ProjectionTable(DeriveSeed(s, "proj_topic"),
                                world_.num_topics, world_.semantic_dim);
  object_proj_ = ProjectionTable(DeriveSeed(s, "proj_object"),
                                 world_.num_objects, world_.semantic_dim);
  keyword_proj_ = ProjectionTable(DeriveSeed(s, "proj_keyword"),
                                  world_.num_keywords, world_.semantic_dim);
  Rng dir_rng(DeriveSeed(s, "proj_dirs"));
  intensity_dir_ = RandomUnitVector(&dir_rng, world_.semantic_dim);
  risk_dir_ = RandomUnitVector(&dir_rng, world_.semantic_dim);

  // Cumulative Zipf(1.1) weights, sized to the largest vocabulary.
  const int32_t max_vocab =
      std::max({world_.num_topics, world_.num_objects, world_.num_keywords,
                world_.num_page_categories, world_.num_url_categories,
                world_.num_domains, world_.num_kg_entities});
  zipf_cache_.resize(static_cast<size_t>(max_vocab));
  double cum = 0.0;
  for (int32_t r = 0; r < max_vocab; ++r) {
    cum += 1.0 / std::pow(static_cast<double>(r + 1), 1.1);
    zipf_cache_[static_cast<size_t>(r)] = cum;
  }
  image_rotation_ = static_cast<int32_t>(
      std::lround(task_.modality_shift * max_vocab / 3.0));
}

int32_t CorpusGenerator::DrawBackground(int32_t vocab, Modality m,
                                        Rng* rng) const {
  CM_CHECK(vocab > 0 && static_cast<size_t>(vocab) <= zipf_cache_.size());
  const double total = zipf_cache_[static_cast<size_t>(vocab - 1)];
  const double r = rng->Uniform() * total;
  const auto it = std::lower_bound(zipf_cache_.begin(),
                                   zipf_cache_.begin() + vocab, r);
  int32_t rank = static_cast<int32_t>(it - zipf_cache_.begin());
  if (rank >= vocab) rank = vocab - 1;
  if (m != Modality::kText) {
    // Covariate shift: image/video backgrounds follow a rotated popularity
    // order over the same vocabulary.
    rank = (rank + image_rotation_) % vocab;
  }
  return rank;
}

int32_t CorpusGenerator::DrawRisky(const std::vector<int32_t>& risky,
                                   Rng* rng) const {
  CM_CHECK(!risky.empty());
  return risky[rng->UniformInt(risky.size())];
}

namespace {
/// Concentrated draw over a risky subset (Zipf s=2): blatant positives pile
/// onto the head items, which is what makes them minable.
int32_t DrawRiskyConcentrated(const std::vector<int32_t>& risky, Rng* rng) {
  std::vector<double> w(risky.size());
  for (size_t i = 0; i < risky.size(); ++i) {
    w[i] = 1.0 / ((i + 1.0) * (i + 1.0));
  }
  return risky[rng->Categorical(w)];
}
}  // namespace

double CorpusGenerator::Signal(double base, Modality m) const {
  if (m == Modality::kText) return base;
  return base * (1.0 - task_.image_signal_damp);
}

void CorpusGenerator::FillLatent(LatentEntity* latent, Modality m,
                                 bool positive, Rng* rng) const {
  const TaskSpec& t = task_;

  // Intensity first: it decides whether a positive is blatant or borderline.
  if (positive) {
    latent->intensity = rng->Bernoulli(t.easy_pos_frac)
                            ? rng->Uniform(0.65, 1.0)
                            : rng->Uniform(0.05, 0.45);
  } else {
    latent->intensity = rng->Uniform(0.0, 0.30);
  }
  const bool blatant = positive && latent->intensity > 0.6;

  // Modality gap: a fraction of image positives express image-specific
  // violation modes a text model has never seen; image negatives'
  // contamination also touches both pools.
  const bool shared_mode =
      m == Modality::kText ||
      rng->Bernoulli(positive ? t.risky_overlap : 0.5);
  const auto& r_topics = shared_mode ? risky_topics_ : image_risky_topics_;
  const auto& r_objects = shared_mode ? risky_objects_ : image_risky_objects_;
  const auto& r_keywords =
      shared_mode ? risky_keywords_ : image_risky_keywords_;
  const auto& r_kg = shared_mode ? risky_kg_ : image_risky_kg_;
  const auto& r_pages =
      shared_mode ? risky_page_cats_ : image_risky_page_cats_;
  const auto& r_urls = shared_mode ? risky_url_cats_ : image_risky_url_cats_;
  const auto& r_domains =
      shared_mode ? risky_domains_ : image_risky_domains_;

  auto draw_risky = [&](const std::vector<int32_t>& risky) {
    return blatant ? DrawRiskyConcentrated(risky, rng) : DrawRisky(risky, rng);
  };

  // Topic channel.
  if (positive && rng->Bernoulli(Signal(t.topic_signal, m))) {
    latent->topic = draw_risky(r_topics);
  } else if (!positive && rng->Bernoulli(t.contamination)) {
    latent->topic = DrawRisky(r_topics, rng);
  } else {
    latent->topic = DrawBackground(world_.num_topics, m, rng);
  }

  // Objects channel.
  const int n_obj = 1 + rng->GeometricCount(0.55, 4);
  latent->objects.clear();
  for (int i = 0; i < n_obj; ++i) {
    if (positive && rng->Bernoulli(Signal(t.object_signal, m) * 0.75)) {
      latent->objects.push_back(draw_risky(r_objects));
    } else if (!positive && rng->Bernoulli(t.contamination)) {
      latent->objects.push_back(DrawRisky(r_objects, rng));
    } else {
      latent->objects.push_back(DrawBackground(world_.num_objects, m, rng));
    }
  }

  // Keywords channel.
  const int n_kw = 2 + rng->GeometricCount(0.6, 4);
  latent->keywords.clear();
  for (int i = 0; i < n_kw; ++i) {
    if (positive && rng->Bernoulli(Signal(t.keyword_signal, m) * 0.7)) {
      latent->keywords.push_back(draw_risky(r_keywords));
    } else if (!positive && rng->Bernoulli(t.contamination)) {
      latent->keywords.push_back(DrawRisky(r_keywords, rng));
    } else {
      latent->keywords.push_back(DrawBackground(world_.num_keywords, m, rng));
    }
  }

  // Knowledge-graph entities (page-content channel).
  const int n_kg = 1 + rng->GeometricCount(0.5, 2);
  latent->kg_entities.clear();
  for (int i = 0; i < n_kg; ++i) {
    if (positive && rng->Bernoulli(Signal(t.page_signal, m) * 0.6)) {
      latent->kg_entities.push_back(draw_risky(r_kg));
    } else if (!positive && rng->Bernoulli(t.contamination)) {
      latent->kg_entities.push_back(DrawRisky(r_kg, rng));
    } else {
      latent->kg_entities.push_back(
          DrawBackground(world_.num_kg_entities, m, rng));
    }
  }

  // Page category.
  if (positive && rng->Bernoulli(Signal(t.page_signal, m))) {
    latent->page_category = draw_risky(r_pages);
  } else if (!positive && rng->Bernoulli(t.contamination)) {
    latent->page_category = DrawRisky(r_pages, rng);
  } else {
    latent->page_category =
        DrawBackground(world_.num_page_categories, m, rng);
  }

  // URL channel: category + domain + riskiness move together.
  const bool risky_url = positive && rng->Bernoulli(Signal(t.url_signal, m));
  if (risky_url) {
    latent->url_category = draw_risky(r_urls);
    latent->domain = rng->Bernoulli(0.8)
                         ? DrawRisky(r_domains, rng)
                         : DrawBackground(world_.num_domains, m, rng);
  } else if (!positive && rng->Bernoulli(t.contamination)) {
    latent->url_category = DrawRisky(r_urls, rng);
    latent->domain = DrawBackground(world_.num_domains, m, rng);
  } else {
    latent->url_category =
        DrawBackground(world_.num_url_categories, m, rng);
    latent->domain = DrawBackground(world_.num_domains, m, rng);
  }
  latent->url_risk =
      Clamp01(rng->Normal(risky_url ? 0.55 : 0.25, 0.18));

  // Setting follows the topic most of the time; sentiment skews negative for
  // positives.
  latent->setting = rng->Bernoulli(0.8)
                        ? latent->topic % world_.num_settings
                        : static_cast<int32_t>(
                              rng->UniformInt(world_.num_settings));
  if (positive) {
    latent->sentiment = static_cast<int32_t>(
        rng->Categorical({0.45, 0.40, 0.15}));
  } else {
    latent->sentiment = static_cast<int32_t>(
        rng->Categorical({0.20, 0.50, 0.30}));
  }

  // User-risk channel and the aggregate statistics derived from it.
  const double shift_adj =
      (m == Modality::kText) ? 0.0 : 0.04 * t.modality_shift;
  const double risk_mean = positive
                               ? 0.30 + 0.35 * Signal(t.user_signal, m)
                               : 0.18 + shift_adj;
  latent->user_risk = Clamp01(rng->Normal(risk_mean, 0.16));
  latent->report_count = SamplePoisson(
      rng, 0.4 + 5.0 * latent->user_risk + (positive ? 1.0 : 0.0));
  latent->share_count = SamplePoisson(rng, 1.5 + 6.0 * latent->url_risk);

  latent->semantic = ComputeSemantic(*latent);
}

std::vector<float> CorpusGenerator::ComputeSemantic(
    const LatentEntity& latent) const {
  const int d = world_.semantic_dim;
  std::vector<float> s(d, 0.0f);
  auto add = [&](const std::vector<float>& v, double w) {
    for (int i = 0; i < d; ++i) s[i] += static_cast<float>(w) * v[i];
  };
  add(topic_proj_[static_cast<size_t>(latent.topic)], 1.0);
  if (!latent.objects.empty()) {
    const double w = 0.9 / latent.objects.size();
    for (int32_t o : latent.objects) {
      add(object_proj_[static_cast<size_t>(o)], w);
    }
  }
  if (!latent.keywords.empty()) {
    const double w = 0.7 / latent.keywords.size();
    for (int32_t k : latent.keywords) {
      add(keyword_proj_[static_cast<size_t>(k)], w);
    }
  }
  add(intensity_dir_, 1.2 * task_.embedding_alignment * latent.intensity);
  add(risk_dir_, 0.8 * task_.embedding_alignment * latent.user_risk);
  double norm_sq = 0.0;
  for (float x : s) norm_sq += static_cast<double>(x) * x;
  const float inv =
      static_cast<float>(1.0 / std::sqrt(std::max(norm_sq, 1e-12)));
  for (auto& x : s) x *= inv;
  return s;
}

Entity CorpusGenerator::MakeEntity(Modality modality, bool positive,
                                   EntityId id, int64_t timestamp,
                                   Rng* rng) const {
  Entity e;
  e.id = id;
  e.modality = modality;
  e.label = positive ? 1 : 0;
  e.timestamp = timestamp;
  FillLatent(&e.latent, modality, positive, rng);
  return e;
}

Entity CorpusGenerator::MakeVideoEntity(bool positive, EntityId id,
                                        int64_t timestamp, int num_frames,
                                        Rng* rng) const {
  Entity e = MakeEntity(Modality::kVideo, positive, id, timestamp, rng);
  e.frames.reserve(static_cast<size_t>(num_frames));
  for (int f = 0; f < num_frames; ++f) {
    LatentEntity frame = e.latent;
    // Frames jitter around the video's semantics: topics drift occasionally,
    // objects are re-observed subsets plus noise.
    if (rng->Bernoulli(0.15)) {
      frame.topic = DrawBackground(world_.num_topics, Modality::kVideo, rng);
    }
    std::vector<int32_t> objs;
    for (int32_t o : e.latent.objects) {
      if (rng->Bernoulli(0.7)) objs.push_back(o);
    }
    if (rng->Bernoulli(0.4)) {
      objs.push_back(DrawBackground(world_.num_objects, Modality::kVideo, rng));
    }
    if (objs.empty()) objs = e.latent.objects;
    frame.objects = std::move(objs);
    frame.intensity = Clamp01(e.latent.intensity + rng->Normal(0.0, 0.08));
    frame.semantic = ComputeSemantic(frame);
    e.frames.push_back(std::move(frame));
  }
  return e;
}

Corpus CorpusGenerator::Generate() const {
  Corpus corpus;
  Rng rng(DeriveSeed(task_.seed, "corpus"));
  EntityId next_id = 1;

  auto make_split = [&](size_t n, Modality m, int64_t ts_lo, int64_t ts_hi,
                        bool noisy_labels) {
    std::vector<Entity> split;
    split.reserve(n);
    const size_t n_pos = static_cast<size_t>(std::lround(n * task_.pos_rate));
    for (size_t i = 0; i < n; ++i) {
      const bool positive = i < n_pos;
      const int64_t ts = ts_lo + static_cast<int64_t>(rng.UniformInt(
                                     static_cast<uint64_t>(ts_hi - ts_lo)));
      Entity e = MakeEntity(m, positive, next_id++, ts, &rng);
      if (noisy_labels && rng.Bernoulli(task_.label_noise)) {
        e.label = static_cast<int8_t>(1 - e.label);
      }
      split.push_back(std::move(e));
    }
    // Shuffle so class is not order-correlated.
    const auto perm = rng.Permutation(split.size());
    std::vector<Entity> shuffled;
    shuffled.reserve(split.size());
    for (size_t p : perm) shuffled.push_back(std::move(split[p]));
    return shuffled;
  };

  // Labeled data (text, supervised image pool, test set) predates the time
  // split; unlabeled image data is sampled from live traffic after it (§6.1).
  corpus.text_labeled =
      make_split(task_.n_text_labeled, Modality::kText, 0, 1000, true);
  corpus.image_labeled_pool =
      make_split(task_.n_image_pool, Modality::kImage, 0, 1000, false);
  corpus.image_test =
      make_split(task_.n_image_test, Modality::kImage, 0, 1000, false);
  corpus.image_unlabeled =
      make_split(task_.n_image_unlabeled, Modality::kImage, 1000, 2000, false);
  return corpus;
}

double PositiveRate(const std::vector<Entity>& entities) {
  if (entities.empty()) return 0.0;
  size_t pos = 0;
  for (const auto& e : entities) {
    if (e.label == 1) ++pos;
  }
  return static_cast<double>(pos) / static_cast<double>(entities.size());
}

}  // namespace crossmodal
