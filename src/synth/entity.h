// Entity and its latent semantics; the unit of data flowing through the
// cross-modal pipeline.

#ifndef CROSSMODAL_SYNTH_ENTITY_H_
#define CROSSMODAL_SYNTH_ENTITY_H_

#include <cstdint>
#include <vector>

#include "features/feature_vector.h"
#include "features/modality.h"

namespace crossmodal {

/// Hidden semantics of an entity. Organizational-resource services observe
/// these fields through noisy, modality-dependent channels; pipeline code
/// never reads them directly (they model the real world, not features).
struct LatentEntity {
  int32_t topic = 0;                  ///< Primary content topic.
  std::vector<int32_t> objects;       ///< Objects depicted/described.
  std::vector<int32_t> keywords;      ///< Keyword metadata.
  std::vector<int32_t> kg_entities;   ///< Knowledge-graph entities involved.
  int32_t page_category = 0;          ///< Category of the linked page.
  int32_t url_category = 0;           ///< URL categorization.
  int32_t domain = 0;                 ///< Linked domain.
  int32_t setting = 0;                ///< Scene/setting.
  int32_t sentiment = 1;              ///< 0=neg, 1=neutral, 2=pos.
  double user_risk = 0.0;             ///< Posting user's violation propensity.
  double url_risk = 0.0;              ///< Linked page riskiness.
  double intensity = 0.0;             ///< How blatant the content is, in
                                      ///< [0,1]; drives easy-vs-borderline.
  int32_t report_count = 0;           ///< Times the user has been reported.
  int32_t share_count = 0;            ///< Times the post has been shared.
  std::vector<float> semantic;        ///< Derived semantic vector (feeds the
                                      ///< pre-trained embedding services).
};

/// A data point of some modality. `label` is the hidden ground truth; the
/// pipeline may only consume it where the paper's setting legitimately has
/// labels (old-modality training data, supervised pools, test evaluation).
struct Entity {
  EntityId id = 0;
  Modality modality = Modality::kText;
  int8_t label = 0;       ///< Ground truth: 1 positive, 0 negative.
  int64_t timestamp = 0;  ///< Creation time; labeled data predates unlabeled.
  LatentEntity latent;
  /// For video entities: per-frame latents (frame-splitter service output).
  std::vector<LatentEntity> frames;
};

/// A generated task corpus, split exactly as in §6.1: labeled data of the
/// old modality (text), unlabeled live traffic of the new modality (image),
/// a hand-labeled pool for fully-supervised baselines/sweeps, and a held-out
/// labeled test set (sampled before/after a time split so there is no
/// train-test leakage).
struct Corpus {
  std::vector<Entity> text_labeled;
  std::vector<Entity> image_unlabeled;
  std::vector<Entity> image_labeled_pool;
  std::vector<Entity> image_test;

  size_t TotalSize() const {
    return text_labeled.size() + image_unlabeled.size() +
           image_labeled_pool.size() + image_test.size();
  }
};

/// Positive rate of a set of entities.
double PositiveRate(const std::vector<Entity>& entities);

}  // namespace crossmodal

#endif  // CROSSMODAL_SYNTH_ENTITY_H_
