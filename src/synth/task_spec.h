// TaskSpec: one binary classification task (CT 1..5) and its generator knobs.

#ifndef CROSSMODAL_SYNTH_TASK_SPEC_H_
#define CROSSMODAL_SYNTH_TASK_SPEC_H_

#include <cstdint>
#include <string>

namespace crossmodal {

/// Configuration of one classification task's synthetic corpus.
///
/// The CT1..CT5 presets are scaled ~1000x down from Table 1 of the paper
/// (e.g. CT1: 18 M labeled text -> 18 k) with identical test-set positive
/// rates. Signal strengths are calibrated so the paper's qualitative results
/// hold (see DESIGN.md §1 and EXPERIMENTS.md).
struct TaskSpec {
  int id = 1;
  std::string name = "CT 1";

  // ---- Corpus sizes (Table 1, scaled) -------------------------------
  size_t n_text_labeled = 18000;
  size_t n_image_unlabeled = 7200;
  size_t n_image_pool = 4000;  ///< Hand-labeled pool for supervised baselines.
  size_t n_image_test = 3000;
  double pos_rate = 0.041;  ///< Test-set positive rate (Table 1 "% Pos").

  // ---- Signal strengths in [0,1] ------------------------------------
  // How strongly each latent channel separates positives from negatives.
  double topic_signal = 0.6;
  double object_signal = 0.5;
  double keyword_signal = 0.5;
  double url_signal = 0.45;
  double user_signal = 0.5;
  double page_signal = 0.5;

  /// Fraction of positives that are "blatant" (high intensity). Blatant
  /// positives trip rule-based flags and concentrated itemsets; borderline
  /// positives are reachable mainly via embedding similarity (§4.4).
  double easy_pos_frac = 0.55;

  /// Background contamination: probability a negative carries a risky
  /// category anyway (caps labeling-function precision below 1).
  double contamination = 0.04;

  /// Covariate shift between text and image corpora in [0,1]: rotates topic
  /// priors and perturbs risk distributions so a text-trained model
  /// transfers imperfectly (§6.6's modality distribution difference).
  double modality_shift = 0.35;

  /// Fraction of image positives whose risky vocabulary comes from the
  /// subsets *shared* with text; the rest express image-specific violation
  /// modes a text-trained model has never seen (the paper's modality gap:
  /// "direct translations of policy violations are unclear").
  double risky_overlap = 0.65;

  /// Per-modality dampening of channel signals for image entities (image
  /// services are noisier than the text services the org matured first).
  double image_signal_damp = 0.15;

  /// How strongly the task's decision-relevant latents (intensity,
  /// user risk) load onto the org-wide pre-trained embedding, in [0, ~1.5].
  /// High alignment makes the embeddings-only supervised baseline strong
  /// (early cross-over); low alignment means the generic embedding barely
  /// helps this task (late cross-over, the CT 5 regime).
  double embedding_alignment = 1.0;

  /// Human label noise on the old modality's labels.
  double label_noise = 0.01;

  uint64_t seed = 0xC0DE;

  /// Scales all corpus sizes by `factor` (rounding, min 100 per split).
  TaskSpec Scaled(double factor) const;

  /// Presets for the paper's five classification tasks; k in [1,5].
  static TaskSpec CT(int k);
};

}  // namespace crossmodal

#endif  // CROSSMODAL_SYNTH_TASK_SPEC_H_
