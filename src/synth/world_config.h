// WorldConfig: fixed vocabularies of the synthetic organizational world.
//
// The synthetic world replaces Google's closed corpora (DESIGN.md §1). Every
// entity — regardless of modality — carries latent semantics drawn from these
// vocabularies; organizational-resource services observe the latents through
// modality-dependent noisy channels.

#ifndef CROSSMODAL_SYNTH_WORLD_CONFIG_H_
#define CROSSMODAL_SYNTH_WORLD_CONFIG_H_

#include <cstdint>

namespace crossmodal {

/// Sizes of the latent vocabularies and embedding spaces. The defaults are
/// scaled to laptop-size corpora while keeping vocabularies "up to several
/// thousand categories" in spirit (§6.2) — large enough that one-hot spaces
/// dominate model input dimensionality, as in the paper.
struct WorldConfig {
  int32_t num_topics = 32;           ///< Topic-model vocabulary.
  int32_t num_objects = 48;          ///< Object-detector vocabulary.
  int32_t num_keywords = 64;         ///< Keyword-metadata vocabulary.
  int32_t num_page_categories = 24;  ///< Page-content categorization.
  int32_t num_url_categories = 16;   ///< URL categorization.
  int32_t num_domains = 40;          ///< Linked-domain vocabulary.
  int32_t num_kg_entities = 56;      ///< Knowledge-graph entity vocabulary.
  int32_t num_settings = 8;          ///< Scene/setting classifier vocabulary.
  int32_t num_sentiments = 3;        ///< negative / neutral / positive.
  int32_t embedding_dim = 16;        ///< Pre-trained embedding dimension.
  int32_t semantic_dim = 12;         ///< Latent semantic vector dimension.

  /// Fraction of each vocabulary that is "risky" for some task (risky
  /// subsets are drawn per task from this budget).
  double risky_vocab_fraction = 0.15;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_SYNTH_WORLD_CONFIG_H_
