// DeterminismHarness: double-run auditing of the pipeline's stage artifacts.
//
// Weak-supervision outputs are artifacts consumed by downstream trainers
// (Snorkel DryBell's reproducibility requirement), so every stage of the
// pipeline must be a pure function of its seed: same WorldConfig/TaskSpec/
// PipelineConfig in, bit-identical artifacts out. The harness enforces this
// mechanically: it executes the whole stack twice from scratch — corpus
// synthesis, feature generation, the TSV/columnar store round trip, kNN
// graph, label propagation, the label matrix, the generative label model,
// model training, serving — and compares a canonical FNV-1a content hash of
// each stage's artifact between the two runs. Any hash mismatch pinpoints
// the first nondeterministic stage instead of a vague "scores differ".
//
// The columnar_roundtrip stage persists the generated store as TSV and as
// the binary columnar format (io/columnar.h), reads both back (columnar via
// mmap), and fails outright unless all three copies hash bit-identically;
// with an `io:` fault entry the round trip additionally runs under injected
// open failures and torn writes (io/io_faults.h), which the deterministic
// IO retry budget must absorb.
//
// Model weights are not directly exposed by CrossModalModel, so the
// trained-model stage hashes the model's scores over the held-out test set
// (a behavioral fingerprint: any weight divergence that can ever affect an
// output diverges this hash); the serving stage re-scores through
// ModelServer, additionally covering the nonservable-stripping path. The
// sharded_scores stage then pushes the same rows through ShardedServer —
// micro-batched, multi-threaded, optionally under a `serving:` fault entry —
// and fails the audit outright if any served score differs bitwise from
// direct scoring.
//
// tools/cmaudit.cc wraps this as a CLI + ctest entry.

#ifndef CROSSMODAL_AUDIT_DETERMINISM_H_
#define CROSSMODAL_AUDIT_DETERMINISM_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "graph/knn_graph.h"
#include "labeling/label_matrix.h"
#include "labeling/label_model.h"
#include "resources/fault_injection.h"
#include "synth/entity.h"
#include "util/result.h"

namespace crossmodal {

/// Audit configuration. Defaults run a reduced-scale Task-2 corpus sized
/// for a ctest entry; cmaudit exposes the knobs as flags.
struct DeterminismOptions {
  int task = 2;              ///< TaskSpec::CT(task).
  double scale = 0.05;       ///< Corpus scale factor.
  uint64_t seed = 0x5EED;    ///< Pipeline seed under audit.
  uint64_t registry_seed = 31;
  /// Worker threads for the audited hot paths (PipelineConfig::parallel).
  /// Any value must produce the same hashes — the double run also proves
  /// the parallel schedule cannot leak into the artifacts.
  size_t num_threads = 1;
  /// Fault plan installed on the registry before the audit, so determinism
  /// is provable *with* injected outages, retries, and degraded rows. Must
  /// satisfy FaultPlan::IsScheduleDeterministic() (RunAudit rejects
  /// arrival-ordered `down_after` plans, whose faults depend on thread
  /// interleaving by construction). Empty = audit the healthy pipeline.
  FaultPlan fault_plan;
};

/// One stage's double-run comparison.
struct StageAudit {
  std::string stage;
  uint64_t hash_first = 0;
  uint64_t hash_second = 0;
  bool pass() const { return hash_first == hash_second; }
};

/// The full audit: per-stage hashes plus the overall verdict.
struct DeterminismReport {
  std::vector<StageAudit> stages;
  bool AllPass() const;
};

class DeterminismHarness {
 public:
  explicit DeterminismHarness(DeterminismOptions options = {});

  /// Runs every stage twice from the configured seed and compares hashes.
  [[nodiscard]] Result<DeterminismReport> RunAudit() const;

  /// Renders the PASS/DIVERGED table.
  static void PrintReport(const DeterminismReport& report, std::ostream& os);

  // ---- Canonical artifact hashes (exposed for tests) ----------------------

  /// Hash of entity identity + label + timestamp, in corpus split order.
  static uint64_t HashCorpus(const Corpus& corpus);

  /// Hash of the feature rows of `order`'s entities, in that order (missing
  /// rows hash as a marker). FeatureStore iteration order itself is
  /// unordered; callers supply a canonical entity order.
  static uint64_t HashFeatureRows(const FeatureStore& store,
                                  const std::vector<EntityId>& order);

  /// Hash of nodes + adjacency (per-node neighbor lists in stored order).
  static uint64_t HashGraph(const SimilarityGraph& graph);

  /// Hash of propagation scores keyed by `order` (score maps are unordered;
  /// the node list fixes a canonical order).
  static uint64_t HashPropagationScores(
      const std::unordered_map<EntityId, double>& scores,
      const std::vector<EntityId>& order);

  /// Hash of LF names + every vote of the matrix, row-major.
  static uint64_t HashLabelMatrix(const LabelMatrix& matrix);

  /// Hash of (entity, p_positive, covered) in vector order.
  static uint64_t HashWeakLabels(const std::vector<ProbabilisticLabel>& labels);

 private:
  DeterminismOptions options_;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_AUDIT_DETERMINISM_H_
