#include "audit/determinism.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <utility>

#include "core/pipeline.h"
#include "io/artifacts.h"
#include "io/columnar.h"
#include "io/io_faults.h"
#include "resources/registry.h"
#include "serving/batch_server.h"
#include "serving/model_server.h"
#include "synth/corpus_generator.h"
#include "util/hashing.h"
#include "util/table_printer.h"

namespace crossmodal {

namespace {

void HashEntities(const std::vector<Entity>& entities, Fnv1aHasher* hasher) {
  hasher->AddU64(entities.size());
  for (const Entity& e : entities) {
    hasher->AddU64(e.id);
    hasher->AddByte(static_cast<uint8_t>(e.modality));
    hasher->AddByte(static_cast<uint8_t>(e.label));
    hasher->AddI64(e.timestamp);
    hasher->AddU64(e.latent.semantic.size());
    for (float v : e.latent.semantic) hasher->AddFloat(v);
  }
}

void HashFeatureValue(const FeatureValue& value, Fnv1aHasher* hasher) {
  if (value.is_missing()) {
    hasher->AddByte(0xFF);
    return;
  }
  hasher->AddByte(static_cast<uint8_t>(value.type()));
  switch (value.type()) {
    case FeatureType::kNumeric:
      hasher->AddDouble(value.numeric());
      break;
    case FeatureType::kCategorical:
      hasher->AddU64(value.categories().size());
      for (int32_t c : value.categories()) hasher->AddI32(c);
      break;
    case FeatureType::kEmbedding:
      hasher->AddU64(value.embedding().size());
      for (float v : value.embedding()) hasher->AddFloat(v);
      break;
  }
}

/// The per-run stage hashes, in audit order.
using StageHashes = std::vector<std::pair<std::string, uint64_t>>;

}  // namespace

bool DeterminismReport::AllPass() const {
  return std::all_of(stages.begin(), stages.end(),
                     [](const StageAudit& s) { return s.pass(); });
}

DeterminismHarness::DeterminismHarness(DeterminismOptions options)
    : options_(options) {}

uint64_t DeterminismHarness::HashCorpus(const Corpus& corpus) {
  Fnv1aHasher hasher;
  HashEntities(corpus.text_labeled, &hasher);
  HashEntities(corpus.image_unlabeled, &hasher);
  HashEntities(corpus.image_labeled_pool, &hasher);
  HashEntities(corpus.image_test, &hasher);
  return hasher.digest();
}

uint64_t DeterminismHarness::HashFeatureRows(
    const FeatureStore& store, const std::vector<EntityId>& order) {
  Fnv1aHasher hasher;
  hasher.AddU64(order.size());
  for (EntityId id : order) {
    hasher.AddU64(id);
    auto row = store.Get(id);
    if (!row.ok()) {
      hasher.AddByte(0xFE);  // missing-row marker
      continue;
    }
    hasher.AddU64((*row)->size());
    for (const FeatureValue& value : (*row)->values()) {
      HashFeatureValue(value, &hasher);
    }
  }
  return hasher.digest();
}

uint64_t DeterminismHarness::HashGraph(const SimilarityGraph& graph) {
  Fnv1aHasher hasher;
  hasher.AddU64(graph.nodes.size());
  for (EntityId id : graph.nodes) hasher.AddU64(id);
  for (const auto& neighbors : graph.adjacency) {
    hasher.AddU64(neighbors.size());
    for (const auto& [j, w] : neighbors) {
      hasher.AddU32(j);
      hasher.AddFloat(w);
    }
  }
  return hasher.digest();
}

uint64_t DeterminismHarness::HashPropagationScores(
    const std::unordered_map<EntityId, double>& scores,
    const std::vector<EntityId>& order) {
  Fnv1aHasher hasher;
  hasher.AddU64(order.size());
  for (EntityId id : order) {
    hasher.AddU64(id);
    auto it = scores.find(id);
    if (it == scores.end()) {
      hasher.AddByte(0xFD);  // unscored marker
    } else {
      hasher.AddDouble(it->second);
    }
  }
  return hasher.digest();
}

uint64_t DeterminismHarness::HashLabelMatrix(const LabelMatrix& matrix) {
  Fnv1aHasher hasher;
  hasher.AddU64(matrix.num_rows());
  hasher.AddU64(matrix.num_lfs());
  for (size_t lf = 0; lf < matrix.num_lfs(); ++lf) {
    hasher.AddString(matrix.lf_name(lf));
  }
  for (size_t row = 0; row < matrix.num_rows(); ++row) {
    hasher.AddU64(matrix.entity(row));
    for (size_t lf = 0; lf < matrix.num_lfs(); ++lf) {
      hasher.AddByte(static_cast<uint8_t>(
          static_cast<int8_t>(matrix.at(row, lf))));
    }
  }
  return hasher.digest();
}

uint64_t DeterminismHarness::HashWeakLabels(
    const std::vector<ProbabilisticLabel>& labels) {
  Fnv1aHasher hasher;
  hasher.AddU64(labels.size());
  for (const ProbabilisticLabel& label : labels) {
    hasher.AddU64(label.entity);
    hasher.AddDouble(label.p_positive);
    hasher.AddByte(label.covered ? 1 : 0);
  }
  return hasher.digest();
}

namespace {

/// Executes the full stack once and returns every stage hash in audit
/// order. Everything is local to the call: two invocations share no state
/// except the options, which is precisely the determinism claim under test.
Result<StageHashes> RunStack(const DeterminismOptions& options) {
  StageHashes hashes;

  // An `io:` entry arms the artifact IO layer for the whole run; verdicts
  // are pure functions of (derived seed, op, basename, attempt), so both
  // audit runs see the identical fault schedule.
  std::unique_ptr<ScopedIoFaultInjection> io_faults;
  if (options.fault_plan.IoEntry() != nullptr) {
    io_faults = std::make_unique<ScopedIoFaultInjection>(
        IoFaultConfigFromPlan(options.fault_plan));
  }

  // ---- Stage: corpus synthesis. ----------------------------------------
  WorldConfig world;
  CorpusGenerator generator(world,
                            TaskSpec::CT(options.task).Scaled(options.scale));
  Corpus corpus = generator.Generate();
  hashes.emplace_back("corpus", DeterminismHarness::HashCorpus(corpus));

  CM_ASSIGN_OR_RETURN(ResourceRegistry registry,
                      BuildModerationRegistry(generator,
                                              options.registry_seed));
  if (!options.fault_plan.empty()) {
    if (!options.fault_plan.IsScheduleDeterministic()) {
      return Status::InvalidArgument(
          "fault plan uses arrival-ordered down_after; such faults depend on "
          "thread interleaving and cannot pass a determinism audit");
    }
    // The registry only knows feature services; a `serving:` entry is
    // routed to the ShardedServer's fault hook below and an `io:` entry to
    // the scoped injector above instead.
    const FaultPlan registry_plan = options.fault_plan.WithoutReserved();
    if (!registry_plan.empty()) {
      CM_RETURN_IF_ERROR(registry.InstallFaultLayer(registry_plan));
    }
  }

  PipelineConfig config;
  config.seed = options.seed;
  config.parallel.num_threads = options.num_threads;
  // The pipeline constructor fans config.parallel out to its own copy of the
  // stage options; the standalone BuildKnnGraph/PropagateLabels calls below
  // read this local config directly, so mirror the fan-out here.
  config.curation.graph.parallel = config.parallel;
  config.curation.propagation.parallel = config.parallel;
  config.model.train.parallel = config.parallel;
  // Reduced-footprint fit so the ctest entry stays fast; the audited code
  // paths (mining, propagation, EM, fusion training) are all exercised.
  config.model.hidden = {16};
  config.model.train.epochs = 6;
  config.curation.dev_sample = 1200;
  config.curation.graph_seed_sample = 600;
  config.curation.graph_tune_sample = 250;

  CrossModalPipeline pipeline(&registry, &corpus, config);

  // ---- Stage: feature generation (MapReduce). --------------------------
  CM_RETURN_IF_ERROR(pipeline.GenerateFeatureSpace());
  std::vector<EntityId> all_entities;
  all_entities.reserve(corpus.TotalSize());
  for (const auto* split : {&corpus.text_labeled, &corpus.image_unlabeled,
                            &corpus.image_labeled_pool, &corpus.image_test}) {
    for (const Entity& e : *split) all_entities.push_back(e.id);
  }
  const uint64_t store_hash =
      DeterminismHarness::HashFeatureRows(pipeline.store(), all_entities);
  hashes.emplace_back("feature_store", store_hash);

  // ---- Stage: columnar round trip. -------------------------------------
  // The in-memory store goes to disk as TSV and as the binary columnar
  // format (io/columnar.h), comes back through both readers (the columnar
  // one via mmap), and all three copies must hash bit-identically. Runs
  // under the armed IO fault layer, so injected open failures and torn
  // writes must be absorbed by the deterministic retry budget. Fixed
  // basenames keep the fault schedule stable; the per-process directory
  // keeps parallel ctest entries apart.
  {
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path dir =
        fs::temp_directory_path(ec) /
        ("cmaudit_store_" + std::to_string(static_cast<long>(::getpid())));
    if (ec) return Status::IOError("no temp directory: " + ec.message());
    fs::create_directories(dir, ec);
    if (ec) return Status::IOError("cannot create " + dir.string());
    const std::string tsv_path = (dir / "audit_features.tsv").string();
    const std::string columnar_path = (dir / "audit_features.cmc").string();

    CM_RETURN_IF_ERROR(WriteFeatureStoreTsv(pipeline.store(), tsv_path));
    CM_ASSIGN_OR_RETURN(FeatureStore tsv_store,
                        ReadFeatureStoreTsv(&registry.schema(), tsv_path));
    CM_RETURN_IF_ERROR(
        WriteFeatureStoreColumnar(pipeline.store(), columnar_path));
    CM_ASSIGN_OR_RETURN(ColumnarReader reader,
                        ColumnarReader::Open(&registry.schema(),
                                             columnar_path));
    CM_ASSIGN_OR_RETURN(FeatureStore columnar_store, reader.Materialize());

    const uint64_t tsv_hash =
        DeterminismHarness::HashFeatureRows(tsv_store, all_entities);
    const uint64_t columnar_hash =
        DeterminismHarness::HashFeatureRows(columnar_store, all_entities);
    if (tsv_hash != store_hash) {
      return Status::Internal(
          "TSV round trip diverged from the in-memory store");
    }
    if (columnar_hash != tsv_hash) {
      return Status::Internal(
          "columnar round trip diverged from the TSV path");
    }
    hashes.emplace_back("columnar_roundtrip", columnar_hash);
    fs::remove_all(dir, ec);  // best-effort cleanup
  }

  // ---- Stages: kNN graph + label propagation. --------------------------
  // Built standalone (the pipeline's internal graph is not exposed) over
  // the same feature subset and options the curation step uses.
  const FeatureSelection& selection = pipeline.selection();
  FeatureSimilarity similarity(&registry.schema(), selection.graph_features);
  std::vector<const FeatureVector*> fit_rows;
  const size_t n_fit = std::min<size_t>(corpus.text_labeled.size(), 1000);
  for (size_t i = 0; i < n_fit; ++i) {
    auto row = pipeline.store().Get(corpus.text_labeled[i].id);
    if (row.ok()) fit_rows.push_back(*row);
  }
  similarity.FitNormalization(fit_rows);

  std::vector<EntityId> nodes;
  std::unordered_map<EntityId, double> prop_seeds;
  const size_t n_seeds =
      std::min(corpus.text_labeled.size(), config.curation.graph_seed_sample);
  for (size_t i = 0; i < n_seeds; ++i) {
    const Entity& e = corpus.text_labeled[i];
    nodes.push_back(e.id);
    prop_seeds.emplace(e.id, e.label == 1 ? 1.0 : 0.0);
  }
  for (const Entity& e : corpus.image_unlabeled) nodes.push_back(e.id);

  CM_ASSIGN_OR_RETURN(SimilarityGraph graph,
                      BuildKnnGraph(nodes, pipeline.store(), similarity,
                                    config.curation.graph));
  hashes.emplace_back("knn_graph", DeterminismHarness::HashGraph(graph));

  CM_ASSIGN_OR_RETURN(PropagationResult propagation,
                      PropagateLabels(graph, prop_seeds,
                                      config.curation.propagation));
  hashes.emplace_back("propagation",
                      DeterminismHarness::HashPropagationScores(
                          propagation.scores, nodes));

  // ---- Stages: curation artifacts + trained model (full pipeline). -----
  CM_ASSIGN_OR_RETURN(PipelineResult result, pipeline.Run());

  std::vector<EntityId> unlabeled_ids;
  unlabeled_ids.reserve(corpus.image_unlabeled.size());
  for (const Entity& e : corpus.image_unlabeled) unlabeled_ids.push_back(e.id);
  const LabelMatrix matrix = ApplyLabelingFunctions(
      result.curation.lfs, unlabeled_ids, pipeline.store());
  hashes.emplace_back("label_matrix",
                      DeterminismHarness::HashLabelMatrix(matrix));
  hashes.emplace_back("weak_labels",
                      DeterminismHarness::HashWeakLabels(
                          result.curation.weak_labels));

  hashes.emplace_back("trained_model",
                      HashDoubles(pipeline.ScoreTestSet(*result.model)));

  // ---- Stage: serving (nonservable stripping included). ----------------
  const std::shared_ptr<const CrossModalModel> model(std::move(result.model));
  CM_ASSIGN_OR_RETURN(ModelServer server,
                      ModelServer::Create(model, &registry.schema(),
                                          selection.image_model_features));
  std::vector<EntityId> test_ids;
  std::vector<const FeatureVector*> test_rows;
  for (const Entity& e : corpus.image_test) {
    auto row = pipeline.store().Get(e.id);
    if (row.ok()) {
      test_ids.push_back(e.id);
      test_rows.push_back(*row);
    }
  }
  const std::vector<double> direct_scores = server.ScoreBatch(test_rows);
  hashes.emplace_back("served_scores", HashDoubles(direct_scores));

  // ---- Stage: sharded serving. -----------------------------------------
  // Same rows through the micro-batching tier: every served score must be
  // bit-identical to direct scoring, and with a `serving:` fault entry the
  // set of failed requests must be a pure function of the plan — both
  // checked here (equality now, purity by the run-vs-run hash).
  ShardedServingOptions sharded_options;
  sharded_options.num_shards = 3;
  sharded_options.max_batch = 8;
  // Roomy queues: admission sheds depend on thread timing and would break
  // the audit; fault sheds are deterministic and allowed.
  sharded_options.queue_capacity = test_rows.size() + 64;
  CM_ASSIGN_OR_RETURN(
      ShardedServer sharded,
      ShardedServer::Create(model, &registry.schema(),
                            selection.image_model_features, sharded_options,
                            options.fault_plan));
  const std::vector<Result<ServedScore>> sharded_results =
      sharded.ScoreAll(test_ids, test_rows);
  Fnv1aHasher sharded_hasher;
  sharded_hasher.AddU64(sharded_results.size());
  for (size_t i = 0; i < sharded_results.size(); ++i) {
    if (sharded_results[i].ok()) {
      const double score = sharded_results[i]->score;
      if (score != direct_scores[i]) {
        return Status::Internal(
            "sharded serving diverged from direct scoring for entity " +
            std::to_string(test_ids[i]));
      }
      sharded_hasher.AddByte(1);
      sharded_hasher.AddDouble(score);
    } else {
      sharded_hasher.AddByte(0);
      sharded_hasher.AddByte(static_cast<uint8_t>(
          sharded_results[i].status().code()));
    }
  }
  hashes.emplace_back("sharded_scores", sharded_hasher.digest());

  return hashes;
}

}  // namespace

Result<DeterminismReport> DeterminismHarness::RunAudit() const {
  CM_ASSIGN_OR_RETURN(StageHashes first, RunStack(options_));
  CM_ASSIGN_OR_RETURN(StageHashes second, RunStack(options_));
  if (first.size() != second.size()) {
    return Status::Internal("stage lists diverged between runs");
  }
  DeterminismReport report;
  report.stages.reserve(first.size());
  for (size_t i = 0; i < first.size(); ++i) {
    if (first[i].first != second[i].first) {
      return Status::Internal("stage order diverged between runs");
    }
    report.stages.push_back(
        StageAudit{first[i].first, first[i].second, second[i].second});
  }
  return report;
}

void DeterminismHarness::PrintReport(const DeterminismReport& report,
                                     std::ostream& os) {
  TablePrinter table({"stage", "run 1 hash", "run 2 hash", "verdict"});
  char buf[24];
  auto hex = [&buf](uint64_t h) {
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return std::string(buf);
  };
  for (const StageAudit& stage : report.stages) {
    table.AddRow({stage.stage, hex(stage.hash_first), hex(stage.hash_second),
                  stage.pass() ? "PASS" : "DIVERGED"});
  }
  table.Print(os);
}

}  // namespace crossmodal
