#include "features/feature_value.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace crossmodal {

const char* FeatureTypeName(FeatureType type) {
  switch (type) {
    case FeatureType::kNumeric:
      return "numeric";
    case FeatureType::kCategorical:
      return "categorical";
    case FeatureType::kEmbedding:
      return "embedding";
  }
  return "?";
}

FeatureValue FeatureValue::Numeric(double v) {
  FeatureValue fv;
  fv.missing_ = false;
  fv.type_ = FeatureType::kNumeric;
  fv.value_ = v;
  return fv;
}

FeatureValue FeatureValue::Categorical(std::vector<int32_t> categories) {
  std::sort(categories.begin(), categories.end());
  categories.erase(std::unique(categories.begin(), categories.end()),
                   categories.end());
  FeatureValue fv;
  fv.missing_ = false;
  fv.type_ = FeatureType::kCategorical;
  fv.value_ = std::move(categories);
  return fv;
}

FeatureValue FeatureValue::Embedding(std::vector<float> values) {
  FeatureValue fv;
  fv.missing_ = false;
  fv.type_ = FeatureType::kEmbedding;
  fv.value_ = std::move(values);
  return fv;
}

double FeatureValue::numeric() const {
  CM_CHECK(!missing_ && type_ == FeatureType::kNumeric);
  return std::get<double>(value_);
}

const std::vector<int32_t>& FeatureValue::categories() const {
  CM_CHECK(!missing_ && type_ == FeatureType::kCategorical);
  return std::get<std::vector<int32_t>>(value_);
}

const std::vector<float>& FeatureValue::embedding() const {
  CM_CHECK(!missing_ && type_ == FeatureType::kEmbedding);
  return std::get<std::vector<float>>(value_);
}

bool FeatureValue::HasCategory(int32_t category) const {
  if (missing_ || type_ != FeatureType::kCategorical) return false;
  const auto& cats = std::get<std::vector<int32_t>>(value_);
  return std::binary_search(cats.begin(), cats.end(), category);
}

double FeatureValue::Jaccard(const FeatureValue& a, const FeatureValue& b) {
  const auto& ca = a.categories();
  const auto& cb = b.categories();
  if (ca.empty() && cb.empty()) return 1.0;
  size_t inter = 0;
  size_t i = 0, j = 0;
  while (i < ca.size() && j < cb.size()) {
    if (ca[i] == cb[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (ca[i] < cb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t uni = ca.size() + cb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

std::string FeatureValue::ToString() const {
  if (missing_) return "missing";
  std::ostringstream ss;
  switch (type_) {
    case FeatureType::kNumeric:
      ss << std::get<double>(value_);
      break;
    case FeatureType::kCategorical: {
      ss << "{";
      const auto& cats = std::get<std::vector<int32_t>>(value_);
      for (size_t i = 0; i < cats.size(); ++i) {
        if (i > 0) ss << ",";
        ss << cats[i];
      }
      ss << "}";
      break;
    }
    case FeatureType::kEmbedding:
      ss << "emb[" << std::get<std::vector<float>>(value_).size() << "]";
      break;
  }
  return ss.str();
}

bool FeatureValue::operator==(const FeatureValue& other) const {
  if (missing_ != other.missing_) return false;
  if (missing_) return true;
  if (type_ != other.type_) return false;
  return value_ == other.value_;
}

}  // namespace crossmodal
