// Data modality tags shared across the library.

#ifndef CROSSMODAL_FEATURES_MODALITY_H_
#define CROSSMODAL_FEATURES_MODALITY_H_

#include <cstdint>
#include <string>

namespace crossmodal {

/// A data modality in the application (the paper's setting: models trained
/// for text entities must adapt to image entities; video splits into image
/// frames via a frame-splitting service).
enum class Modality : uint8_t {
  kText = 0,
  kImage = 1,
  kVideo = 2,
};

inline const char* ModalityName(Modality m) {
  switch (m) {
    case Modality::kText:
      return "text";
    case Modality::kImage:
      return "image";
    case Modality::kVideo:
      return "video";
  }
  return "?";
}

/// Bitmask of modalities a feature or service applies to.
enum ModalityMask : uint8_t {
  kTextMask = 1u << 0,
  kImageMask = 1u << 1,
  kVideoMask = 1u << 2,
  kAllModalities = kTextMask | kImageMask | kVideoMask,
};

inline uint8_t ModalityBit(Modality m) {
  return static_cast<uint8_t>(1u << static_cast<uint8_t>(m));
}

inline bool MaskContains(uint8_t mask, Modality m) {
  return (mask & ModalityBit(m)) != 0;
}

}  // namespace crossmodal

#endif  // CROSSMODAL_FEATURES_MODALITY_H_
