// FeatureValue: one structured output of an organizational resource.
//
// The paper's common feature space is built from services whose outputs are
// "categorical and quantitative" (§3): a numeric feature, a multivalent
// categorical feature (a set of category ids), or — for image-specific
// services — a dense pre-trained embedding. A value may also be missing
// (service not applicable / not populated for this modality).

#ifndef CROSSMODAL_FEATURES_FEATURE_VALUE_H_
#define CROSSMODAL_FEATURES_FEATURE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace crossmodal {

/// The kind of value a feature carries.
enum class FeatureType : uint8_t {
  kNumeric = 0,      ///< A single double (e.g. an aggregate statistic).
  kCategorical = 1,  ///< A set of category ids out of a fixed vocabulary.
  kEmbedding = 2,    ///< A dense float vector (pre-trained embedding).
};

const char* FeatureTypeName(FeatureType type);

/// A single feature value; missing by default.
class FeatureValue {
 public:
  /// Constructs a missing value.
  FeatureValue() = default;

  /// Named constructors.
  static FeatureValue Missing() { return FeatureValue(); }
  static FeatureValue Numeric(double v);
  /// Categories are stored sorted and deduplicated.
  static FeatureValue Categorical(std::vector<int32_t> categories);
  static FeatureValue Embedding(std::vector<float> values);

  bool is_missing() const { return missing_; }
  FeatureType type() const { return type_; }

  /// Typed accessors; calling the wrong accessor or accessing a missing
  /// value is a programming error (checked).
  double numeric() const;
  const std::vector<int32_t>& categories() const;
  const std::vector<float>& embedding() const;

  /// True if this is a categorical value containing `category`.
  bool HasCategory(int32_t category) const;

  /// Jaccard similarity of two categorical values in [0, 1]. Two empty sets
  /// are defined to have similarity 1. Both values must be categorical and
  /// present.
  static double Jaccard(const FeatureValue& a, const FeatureValue& b);

  /// Debug rendering, e.g. "{3,17}", "0.25", "emb[16]", "∅".
  std::string ToString() const;

  bool operator==(const FeatureValue& other) const;

 private:
  bool missing_ = true;
  FeatureType type_ = FeatureType::kNumeric;
  std::variant<double, std::vector<int32_t>, std::vector<float>> value_;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_FEATURES_FEATURE_VALUE_H_
