#include "features/feature_vector.h"

#include "util/logging.h"

namespace crossmodal {

const FeatureValue FeatureVector::kMissing = FeatureValue::Missing();

void FeatureVector::Set(FeatureId id, FeatureValue value) {
  CM_CHECK(id >= 0 && static_cast<size_t>(id) < values_.size())
      << "feature id out of range: " << id;
  values_[static_cast<size_t>(id)] = std::move(value);
}

const FeatureValue& FeatureVector::Get(FeatureId id) const {
  if (id < 0 || static_cast<size_t>(id) >= values_.size()) return kMissing;
  return values_[static_cast<size_t>(id)];
}

double FeatureVector::Density() const {
  if (values_.empty()) return 0.0;
  size_t populated = 0;
  for (const auto& v : values_) {
    if (!v.is_missing()) ++populated;
  }
  return static_cast<double>(populated) / static_cast<double>(values_.size());
}

void FeatureStore::Put(EntityId entity, FeatureVector row) {
  CM_CHECK(row.size() == schema_->size())
      << "row arity " << row.size() << " != schema arity " << schema_->size();
  rows_[entity] = std::move(row);
}

Result<const FeatureVector*> FeatureStore::Get(EntityId entity) const {
  auto it = rows_.find(entity);
  if (it == rows_.end()) {
    return Status::NotFound("no features for entity " +
                            std::to_string(entity));
  }
  return &it->second;
}

}  // namespace crossmodal
