// FeatureVector / FeatureStore: materialized common-feature-space rows.

#ifndef CROSSMODAL_FEATURES_FEATURE_VECTOR_H_
#define CROSSMODAL_FEATURES_FEATURE_VECTOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "features/feature_schema.h"
#include "features/feature_value.h"
#include "features/modality.h"
#include "util/result.h"

namespace crossmodal {

/// Opaque entity identifier (a post, image, or video).
using EntityId = uint64_t;

/// One entity's representation F_x = {f_1(x), ..., f_k(x)} in the common
/// feature space, aligned to a FeatureSchema: slot i holds feature i's value
/// (possibly missing).
class FeatureVector {
 public:
  FeatureVector() = default;

  /// Creates a vector with `size` missing slots.
  explicit FeatureVector(size_t size) : values_(size) {}

  size_t size() const { return values_.size(); }

  /// Sets slot `id` (must be in range).
  void Set(FeatureId id, FeatureValue value);

  /// Value of feature `id`; a missing FeatureValue if never set.
  const FeatureValue& Get(FeatureId id) const;

  bool IsMissing(FeatureId id) const { return Get(id).is_missing(); }

  /// Fraction of slots that are populated.
  double Density() const;

  const std::vector<FeatureValue>& values() const { return values_; }

 private:
  std::vector<FeatureValue> values_;
  static const FeatureValue kMissing;
};

/// In-memory feature store: entity id -> FeatureVector, with the schema the
/// vectors are aligned to. This is the handoff artifact between pipeline
/// step A (feature generation) and steps B/C.
class FeatureStore {
 public:
  explicit FeatureStore(const FeatureSchema* schema) : schema_(schema) {}

  /// Inserts or replaces the row for `entity`.
  void Put(EntityId entity, FeatureVector row);

  /// Looks up a row.
  [[nodiscard]] Result<const FeatureVector*> Get(EntityId entity) const;

  bool Contains(EntityId entity) const { return rows_.count(entity) > 0; }
  size_t size() const { return rows_.size(); }

  const FeatureSchema& schema() const { return *schema_; }

  /// Iteration support.
  auto begin() const { return rows_.begin(); }
  auto end() const { return rows_.end(); }

 private:
  const FeatureSchema* schema_;
  std::unordered_map<EntityId, FeatureVector> rows_;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_FEATURES_FEATURE_VECTOR_H_
