// FeatureSchema: the declared common feature space F = {f_1, ..., f_k}.
//
// Each organizational resource contributes one FeatureDef (§3.1). The schema
// records, per feature: its type and vocabulary, which service set it belongs
// to (the paper's A/B/C/D grouping, §6.2), which modalities it applies to,
// and whether it is servable at inference time (§6.4's nonservable features
// may be used for weak supervision only).

#ifndef CROSSMODAL_FEATURES_FEATURE_SCHEMA_H_
#define CROSSMODAL_FEATURES_FEATURE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "features/feature_value.h"
#include "features/modality.h"
#include "util/result.h"
#include "util/status.h"

namespace crossmodal {

/// Index of a feature within a schema.
using FeatureId = int32_t;

/// The paper's service-set grouping used throughout §6: URL-based (A),
/// keyword-based (B), topic-model-based (C), page-content-based (D), plus
/// image-specific embedding/quality services (E).
enum class ServiceSet : uint8_t { kA = 0, kB = 1, kC = 2, kD = 3, kImage = 4 };

const char* ServiceSetName(ServiceSet set);

/// Declaration of one feature in the common space.
struct FeatureDef {
  std::string name;
  FeatureType type = FeatureType::kCategorical;
  ServiceSet set = ServiceSet::kA;
  /// Vocabulary size for categorical features; embedding dimension for
  /// embedding features; ignored for numeric.
  int32_t cardinality = 0;
  /// Modalities this feature can be populated for (bitmask of ModalityMask).
  uint8_t modalities = kAllModalities;
  /// False for features too costly to compute at serving time; such features
  /// may feed labeling functions and label propagation but not the end model.
  bool servable = true;
};

/// An ordered, named collection of FeatureDefs with O(1) lookup by name.
class FeatureSchema {
 public:
  FeatureSchema() = default;

  /// Appends a feature; fails if the name already exists.
  [[nodiscard]] Result<FeatureId> Add(FeatureDef def);

  /// Number of features.
  size_t size() const { return defs_.size(); }
  bool empty() const { return defs_.empty(); }

  /// Definition of feature `id`; id must be in range.
  const FeatureDef& def(FeatureId id) const;

  /// Finds a feature id by name.
  [[nodiscard]] Result<FeatureId> Find(const std::string& name) const;

  /// All feature ids belonging to the given service sets, optionally
  /// restricted to servable features and/or a modality.
  std::vector<FeatureId> Select(const std::vector<ServiceSet>& sets,
                                bool servable_only = false,
                                int modality_mask = kAllModalities) const;

  /// All ids, in declaration order.
  std::vector<FeatureId> AllIds() const;

  const std::vector<FeatureDef>& defs() const { return defs_; }

 private:
  std::vector<FeatureDef> defs_;
  std::unordered_map<std::string, FeatureId> by_name_;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_FEATURES_FEATURE_SCHEMA_H_
