#include "features/feature_schema.h"

#include "util/logging.h"

namespace crossmodal {

const char* ServiceSetName(ServiceSet set) {
  switch (set) {
    case ServiceSet::kA:
      return "A";
    case ServiceSet::kB:
      return "B";
    case ServiceSet::kC:
      return "C";
    case ServiceSet::kD:
      return "D";
    case ServiceSet::kImage:
      return "E(image)";
  }
  return "?";
}

Result<FeatureId> FeatureSchema::Add(FeatureDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("feature name must be non-empty");
  }
  if (by_name_.count(def.name) > 0) {
    return Status::AlreadyExists("feature already declared: " + def.name);
  }
  const FeatureId id = static_cast<FeatureId>(defs_.size());
  by_name_.emplace(def.name, id);
  defs_.push_back(std::move(def));
  return id;
}

const FeatureDef& FeatureSchema::def(FeatureId id) const {
  CM_CHECK(id >= 0 && static_cast<size_t>(id) < defs_.size())
      << "feature id out of range: " << id;
  return defs_[static_cast<size_t>(id)];
}

Result<FeatureId> FeatureSchema::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no such feature: " + name);
  }
  return it->second;
}

std::vector<FeatureId> FeatureSchema::Select(
    const std::vector<ServiceSet>& sets, bool servable_only,
    int modality_mask) const {
  std::vector<FeatureId> out;
  for (size_t i = 0; i < defs_.size(); ++i) {
    const FeatureDef& d = defs_[i];
    bool in_set = false;
    for (ServiceSet s : sets) {
      if (d.set == s) {
        in_set = true;
        break;
      }
    }
    if (!in_set) continue;
    if (servable_only && !d.servable) continue;
    if ((d.modalities & modality_mask) == 0) continue;
    out.push_back(static_cast<FeatureId>(i));
  }
  return out;
}

std::vector<FeatureId> FeatureSchema::AllIds() const {
  std::vector<FeatureId> out(defs_.size());
  for (size_t i = 0; i < defs_.size(); ++i) out[i] = static_cast<FeatureId>(i);
  return out;
}

}  // namespace crossmodal
