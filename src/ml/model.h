// Model interface for the end discriminative models (§6.3: logistic
// regression and fully-connected DNNs, trained with a noise-aware
// cross-entropy over probabilistic labels).

#ifndef CROSSMODAL_ML_MODEL_H_
#define CROSSMODAL_ML_MODEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/dataset.h"
#include "util/parallel.h"
#include "util/result.h"

namespace crossmodal {

/// Training hyperparameters (Adam).
struct TrainOptions {
  int epochs = 12;
  size_t batch_size = 64;
  double learning_rate = 0.05;
  double l2 = 1e-5;
  uint64_t seed = 0x7EA1;
  /// Up-weights positive-leaning targets by this factor (class imbalance).
  double positive_weight = 1.0;
  /// Batch gradients accumulate into per-slice partial sums (a fixed slice
  /// count, independent of the thread count) combined in slice order, so
  /// trained weights are bit-identical for every ParallelConfig.
  ParallelConfig parallel;
};

/// Fixed number of gradient-accumulation slices per minibatch. Constant —
/// never derived from the thread count — so the float summation tree of a
/// batch gradient is the same whether 1 or N workers execute the slices.
inline constexpr size_t kGradSlices = 8;

/// A trained binary classifier.
class Model {
 public:
  virtual ~Model() = default;

  /// P(y = 1 | x).
  virtual double Predict(const SparseRow& x) const = 0;

  /// Penultimate representation (logit for linear models, last hidden layer
  /// for MLPs); consumed by intermediate fusion and DeViSE (§5).
  virtual std::vector<double> Embed(const SparseRow& x) const = 0;

  /// Dimension of Embed() outputs.
  virtual size_t embed_dim() const = 0;

  /// Applies only the frozen final prediction layer to an externally
  /// supplied embedding of embed_dim() (DeViSE passes projected embeddings
  /// through the old-modality model's head, §5).
  virtual double PredictFromEmbedding(const std::vector<double>& e) const = 0;

  /// Number of trainable parameters (for reports).
  virtual size_t num_parameters() const = 0;
};

using ModelPtr = std::unique_ptr<Model>;

/// Batch scoring helper.
std::vector<double> PredictAll(const Model& model,
                               const std::vector<SparseRow>& rows);

/// Numerically safe logistic function.
double Sigmoid(double z);

}  // namespace crossmodal

#endif  // CROSSMODAL_ML_MODEL_H_
