#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "util/logging.h"

namespace crossmodal {

Status ValidateScoredLabels(const std::vector<double>& scores,
                            const std::vector<int>& labels) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument(
        "scores/labels size mismatch: " + std::to_string(scores.size()) +
        " vs " + std::to_string(labels.size()));
  }
  for (size_t i = 0; i < scores.size(); ++i) {
    if (!std::isfinite(scores[i])) {
      return Status::InvalidArgument("non-finite score at index " +
                                     std::to_string(i));
    }
    if (labels[i] != 0 && labels[i] != 1) {
      return Status::InvalidArgument(
          "label at index " + std::to_string(i) + " is " +
          std::to_string(labels[i]) + "; binary metrics need {0,1}");
    }
  }
  return Status::OK();
}

Result<double> CheckedAveragePrecision(const std::vector<double>& scores,
                                       const std::vector<int>& labels) {
  CM_RETURN_IF_ERROR(ValidateScoredLabels(scores, labels));
  return AveragePrecision(scores, labels);
}

Result<double> CheckedRocAuc(const std::vector<double>& scores,
                             const std::vector<int>& labels) {
  CM_RETURN_IF_ERROR(ValidateScoredLabels(scores, labels));
  return RocAuc(scores, labels);
}

namespace {
/// Indices sorted by descending score; ties broken by index for determinism.
std::vector<size_t> DescendingOrder(const std::vector<double>& scores) {
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  return order;
}
}  // namespace

double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<int>& labels) {
  CM_CHECK(scores.size() == labels.size());
  size_t n_pos = 0;
  for (int y : labels) n_pos += (y == 1);
  if (n_pos == 0) return 0.0;

  const auto order = DescendingOrder(scores);
  double ap = 0.0;
  size_t tp = 0;
  for (size_t k = 0; k < order.size(); ++k) {
    if (labels[order[k]] == 1) {
      ++tp;
      ap += static_cast<double>(tp) / static_cast<double>(k + 1);
    }
  }
  return ap / static_cast<double>(n_pos);
}

double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels) {
  CM_CHECK(scores.size() == labels.size());
  size_t n_pos = 0, n_neg = 0;
  for (int y : labels) (y == 1 ? n_pos : n_neg)++;
  if (n_pos == 0 || n_neg == 0) return 0.5;

  // Rank-sum with average ranks for ties.
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    const double avg_rank = 0.5 * (static_cast<double>(i + 1) +
                                   static_cast<double>(j + 1));
    for (size_t k = i; k <= j; ++k) {
      if (labels[order[k]] == 1) rank_sum_pos += avg_rank;
    }
    i = j + 1;
  }
  const double n_pos_d = static_cast<double>(n_pos);
  const double n_neg_d = static_cast<double>(n_neg);
  return (rank_sum_pos - n_pos_d * (n_pos_d + 1.0) / 2.0) /
         (n_pos_d * n_neg_d);
}

PrfMetrics PrecisionRecallF1(const std::vector<double>& scores,
                             const std::vector<int>& labels,
                             double threshold) {
  CM_CHECK(scores.size() == labels.size());
  size_t tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    const bool pred = scores[i] >= threshold;
    if (pred && labels[i] == 1) ++tp;
    if (pred && labels[i] == 0) ++fp;
    if (!pred && labels[i] == 1) ++fn;
  }
  PrfMetrics m;
  if (tp + fp > 0) {
    m.precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
  }
  if (tp + fn > 0) {
    m.recall = static_cast<double>(tp) / static_cast<double>(tp + fn);
  }
  if (m.precision + m.recall > 0.0) {
    m.f1 = 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
  return m;
}

std::vector<PrPoint> PrecisionRecallCurve(const std::vector<double>& scores,
                                          const std::vector<int>& labels) {
  CM_CHECK(scores.size() == labels.size());
  size_t n_pos = 0;
  for (int y : labels) n_pos += (y == 1);
  std::vector<PrPoint> curve;
  if (n_pos == 0) return curve;
  const auto order = DescendingOrder(scores);
  size_t tp = 0;
  for (size_t k = 0; k < order.size(); ++k) {
    if (labels[order[k]] == 1) ++tp;
    // Emit a point at the end of each tie group.
    if (k + 1 < order.size() &&
        scores[order[k + 1]] == scores[order[k]]) {
      continue;
    }
    PrPoint p;
    p.threshold = scores[order[k]];
    p.precision = static_cast<double>(tp) / static_cast<double>(k + 1);
    p.recall = static_cast<double>(tp) / static_cast<double>(n_pos);
    curve.push_back(p);
  }
  return curve;
}

}  // namespace crossmodal
