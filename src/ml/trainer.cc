#include "ml/trainer.h"

#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "util/logging.h"
#include "util/random.h"

namespace crossmodal {

namespace {

/// Prediction-averaging ensemble over independently seeded members.
class EnsembleModel : public Model {
 public:
  explicit EnsembleModel(std::vector<ModelPtr> members)
      : members_(std::move(members)) {
    CM_CHECK(!members_.empty());
    for (const auto& m : members_) embed_dim_ += m->embed_dim();
  }

  double Predict(const SparseRow& x) const override {
    double total = 0.0;
    for (const auto& m : members_) total += m->Predict(x);
    return total / static_cast<double>(members_.size());
  }

  std::vector<double> Embed(const SparseRow& x) const override {
    std::vector<double> out;
    out.reserve(embed_dim_);
    for (const auto& m : members_) {
      const auto e = m->Embed(x);
      out.insert(out.end(), e.begin(), e.end());
    }
    return out;
  }

  size_t embed_dim() const override { return embed_dim_; }

  double PredictFromEmbedding(const std::vector<double>& e) const override {
    CM_CHECK(e.size() == embed_dim_);
    double total = 0.0;
    size_t offset = 0;
    for (const auto& m : members_) {
      const std::vector<double> slice(e.begin() + offset,
                                      e.begin() + offset + m->embed_dim());
      total += m->PredictFromEmbedding(slice);
      offset += m->embed_dim();
    }
    return total / static_cast<double>(members_.size());
  }

  size_t num_parameters() const override {
    size_t total = 0;
    for (const auto& m : members_) total += m->num_parameters();
    return total;
  }

 private:
  std::vector<ModelPtr> members_;
  size_t embed_dim_ = 0;
};

Result<ModelPtr> TrainSingle(const Dataset& data, const ModelSpec& spec) {
  switch (spec.kind) {
    case ModelKind::kLogisticRegression: {
      CM_ASSIGN_OR_RETURN(LogisticRegression lr,
                          LogisticRegression::Train(data, spec.train));
      return ModelPtr(std::make_unique<LogisticRegression>(std::move(lr)));
    }
    case ModelKind::kMlp: {
      MlpOptions options;
      options.train = spec.train;
      options.hidden = spec.hidden;
      CM_ASSIGN_OR_RETURN(Mlp mlp, Mlp::Train(data, options));
      return ModelPtr(std::make_unique<Mlp>(std::move(mlp)));
    }
  }
  return Status::InvalidArgument("unknown model kind");
}

}  // namespace

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLogisticRegression:
      return "logistic_regression";
    case ModelKind::kMlp:
      return "mlp";
  }
  return "?";
}

Result<ModelPtr> TrainModel(const Dataset& data, const ModelSpec& spec) {
  if (spec.ensemble_size <= 1) return TrainSingle(data, spec);
  std::vector<ModelPtr> members;
  members.reserve(static_cast<size_t>(spec.ensemble_size));
  for (int k = 0; k < spec.ensemble_size; ++k) {
    ModelSpec member_spec = spec;
    member_spec.ensemble_size = 1;
    member_spec.train.seed =
        DeriveSeed(spec.train.seed, static_cast<uint64_t>(k));
    CM_ASSIGN_OR_RETURN(ModelPtr member, TrainSingle(data, member_spec));
    members.push_back(std::move(member));
  }
  return ModelPtr(std::make_unique<EnsembleModel>(std::move(members)));
}

namespace {
double ValidationAuprc(const Model& model, const Dataset& val,
                       const ParallelConfig& parallel) {
  std::vector<double> scores(val.size());
  std::vector<int> labels(val.size());
  // Scoring is read-only on the model and each index owns its output slot,
  // so slices are independent and the AUPRC is thread-count-invariant.
  StagePool pool(parallel);
  ForEachSlice(pool.get(), val.size(), kGradSlices,
               [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const Example& ex = val.examples[i];
      scores[i] = model.Predict(ex.x);
      labels[i] = ex.target >= 0.5f ? 1 : 0;
    }
  });
  return AveragePrecision(scores, labels);
}
}  // namespace

Result<TuneResult> GridSearch(const Dataset& train, const Dataset& val,
                              const ModelSpec& base,
                              const TunerOptions& options) {
  if (val.empty()) return Status::InvalidArgument("empty validation set");
  TuneResult result;
  result.best_spec = base;
  result.best_val_auprc = -1.0;

  const std::vector<std::vector<int>> stacks =
      base.kind == ModelKind::kMlp ? options.hidden_stacks
                                   : std::vector<std::vector<int>>{{}};
  for (double lr : options.learning_rates) {
    for (double l2 : options.l2s) {
      for (const auto& stack : stacks) {
        ModelSpec spec = base;
        spec.train.learning_rate = lr;
        spec.train.l2 = l2;
        if (base.kind == ModelKind::kMlp) spec.hidden = stack;
        CM_ASSIGN_OR_RETURN(ModelPtr model, TrainModel(train, spec));
        const double auprc = ValidationAuprc(*model, val, spec.train.parallel);
        ++result.trials;
        if (auprc > result.best_val_auprc) {
          result.best_val_auprc = auprc;
          result.best_spec = spec;
        }
      }
    }
  }
  return result;
}

}  // namespace crossmodal
