#include "ml/logistic_regression.h"

#include <cmath>

#include "util/logging.h"
#include "util/parallel.h"
#include "util/random.h"

namespace crossmodal {

double Sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

std::vector<double> PredictAll(const Model& model,
                               const std::vector<SparseRow>& rows) {
  std::vector<double> out(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) out[i] = model.Predict(rows[i]);
  return out;
}

Result<LogisticRegression> LogisticRegression::Train(
    const Dataset& data, const TrainOptions& options) {
  if (data.empty()) return Status::InvalidArgument("empty training set");

  LogisticRegression model;
  model.weights_.assign(data.dim, 0.0);
  model.bias_ = 0.0;

  // Adam state (dense; dims here are a few hundred).
  std::vector<double> m(data.dim, 0.0), v(data.dim, 0.0);
  double mb = 0.0, vb = 0.0;
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  double beta1_t = 1.0, beta2_t = 1.0;

  std::vector<double> grad(data.dim, 0.0);
  std::vector<uint32_t> touched;

  // Per-slice partial gradients: each of the kGradSlices fixed batch slices
  // accumulates into its own dense buffer (+ touched list for sparse
  // reset), then the partials are folded into `grad` in slice order. The
  // summation tree depends only on the batch split, so the fitted weights
  // are bit-identical whether the slices run inline or across workers.
  StagePool stage_pool(options.parallel);
  std::vector<std::vector<double>> slice_grad(kGradSlices);
  std::vector<std::vector<uint32_t>> slice_touched(kGradSlices);
  std::vector<double> slice_grad_b(kGradSlices, 0.0);
  for (auto& sg : slice_grad) sg.assign(data.dim, 0.0);

  Rng rng(options.seed);
  const size_t n = data.size();
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const auto perm = rng.Permutation(n);
    for (size_t start = 0; start < n; start += options.batch_size) {
      const size_t end = std::min(n, start + options.batch_size);
      const size_t batch = end - start;
      std::fill(slice_grad_b.begin(), slice_grad_b.end(), 0.0);
      ForEachSlice(stage_pool.get(), batch, kGradSlices,
                   [&](size_t slice, size_t s_begin, size_t s_end) {
        auto& sg = slice_grad[slice];
        auto& st = slice_touched[slice];
        st.clear();
        // Worst case every feature of the slice is touched; reserving the
        // dense-gradient width keeps the inner loop allocation-free (the
        // capacity is retained across batches by clear()).
        st.reserve(sg.size());
        double gb = 0.0;
        for (size_t k = s_begin; k < s_end; ++k) {
          const Example& ex = data.examples[perm[start + k]];
          const double p = Sigmoid(ex.x.Dot(model.weights_) + model.bias_);
          double w = ex.weight;
          if (ex.target > 0.5) w *= options.positive_weight;
          // Noise-aware CE gradient: (p - soft_target).
          const double g = w * (p - ex.target);
          for (const auto& [idx, val] : ex.x.entries) {
            if (sg[idx] == 0.0) st.push_back(idx);
            sg[idx] += g * val;
          }
          gb += g;
        }
        slice_grad_b[slice] = gb;
      });
      // Fold partials in fixed slice order; clear them for the next batch.
      touched.clear();
      double grad_b = 0.0;
      for (size_t slice = 0; slice < kGradSlices; ++slice) {
        for (uint32_t idx : slice_touched[slice]) {
          if (grad[idx] == 0.0) touched.push_back(idx);
          grad[idx] += slice_grad[slice][idx];
          slice_grad[slice][idx] = 0.0;
        }
        grad_b += slice_grad_b[slice];
      }
      const double scale = 1.0 / static_cast<double>(end - start);
      beta1_t *= beta1;
      beta2_t *= beta2;
      const double corr1 = 1.0 - beta1_t, corr2 = 1.0 - beta2_t;
      for (uint32_t idx : touched) {
        const double g = grad[idx] * scale + options.l2 * model.weights_[idx];
        grad[idx] = 0.0;
        m[idx] = beta1 * m[idx] + (1.0 - beta1) * g;
        v[idx] = beta2 * v[idx] + (1.0 - beta2) * g * g;
        model.weights_[idx] -= options.learning_rate * (m[idx] / corr1) /
                               (std::sqrt(v[idx] / corr2) + eps);
      }
      const double gb = grad_b * scale;
      mb = beta1 * mb + (1.0 - beta1) * gb;
      vb = beta2 * vb + (1.0 - beta2) * gb * gb;
      model.bias_ -= options.learning_rate * (mb / corr1) /
                     (std::sqrt(vb / corr2) + eps);
    }
  }
  return model;
}

double LogisticRegression::Predict(const SparseRow& x) const {
  return Sigmoid(x.Dot(weights_) + bias_);
}

std::vector<double> LogisticRegression::Embed(const SparseRow& x) const {
  return {x.Dot(weights_) + bias_};
}

double LogisticRegression::PredictFromEmbedding(
    const std::vector<double>& e) const {
  CM_CHECK(e.size() == 1);
  return Sigmoid(e[0]);
}

}  // namespace crossmodal
