// Multinomial (softmax) logistic regression on soft target distributions —
// the multi-class counterpart of LogisticRegression, for multi-class weak
// supervision (§4.1).

#ifndef CROSSMODAL_ML_SOFTMAX_REGRESSION_H_
#define CROSSMODAL_ML_SOFTMAX_REGRESSION_H_

#include <vector>

#include "ml/dataset.h"
#include "ml/model.h"
#include "util/result.h"

namespace crossmodal {

/// One multi-class training example: sparse row + target distribution.
struct MulticlassExample {
  SparseRow x;
  std::vector<float> target;  ///< Size num_classes; sums to 1.
  float weight = 1.0f;
};

/// Multi-class dataset.
struct MulticlassDataset {
  size_t dim = 0;
  int32_t num_classes = 0;
  std::vector<MulticlassExample> examples;
};

/// Linear softmax classifier trained with Adam on soft targets.
class SoftmaxRegression {
 public:
  /// Trains on `data`; fails on empty data or inconsistent targets.
  [[nodiscard]] static Result<SoftmaxRegression> Train(const MulticlassDataset& data,
                                         const TrainOptions& options);

  /// Class probability distribution for a row.
  std::vector<double> Predict(const SparseRow& x) const;

  /// Argmax class.
  int32_t PredictClass(const SparseRow& x) const;

  int32_t num_classes() const { return num_classes_; }
  size_t num_parameters() const {
    return weights_.size() + biases_.size();
  }

 private:
  int32_t num_classes_ = 0;
  size_t dim_ = 0;
  std::vector<double> weights_;  // [class][dim] row-major
  std::vector<double> biases_;
};

/// Multi-class accuracy of argmax predictions.
double MulticlassAccuracy(const std::vector<int32_t>& predicted,
                          const std::vector<int32_t>& truth);

/// Macro-averaged F1 over classes.
double MacroF1(const std::vector<int32_t>& predicted,
               const std::vector<int32_t>& truth, int32_t num_classes);

}  // namespace crossmodal

#endif  // CROSSMODAL_ML_SOFTMAX_REGRESSION_H_
