#include "ml/encoder.h"

#include <cmath>

#include "util/logging.h"

namespace crossmodal {

Result<FeatureEncoder> FeatureEncoder::Fit(
    const FeatureSchema& schema,
    const std::vector<const FeatureVector*>& rows, EncoderOptions options) {
  if (options.features.empty()) {
    return Status::InvalidArgument("encoder needs at least one feature");
  }
  FeatureEncoder encoder;
  encoder.options_ = std::move(options);
  uint32_t offset = 0;
  for (FeatureId f : encoder.options_.features) {
    if (f < 0 || static_cast<size_t>(f) >= schema.size()) {
      return Status::InvalidArgument("unknown feature id " +
                                     std::to_string(f));
    }
    const FeatureDef& def = schema.def(f);
    Slot slot;
    slot.feature = f;
    slot.type = def.type;
    slot.offset = offset;
    switch (def.type) {
      case FeatureType::kCategorical:
        if (def.cardinality <= 0) {
          return Status::InvalidArgument("categorical feature " + def.name +
                                         " has no declared vocabulary");
        }
        slot.width = static_cast<uint32_t>(def.cardinality);
        break;
      case FeatureType::kNumeric: {
        slot.width = 1;
        double sum = 0.0, sum_sq = 0.0;
        size_t count = 0;
        for (const auto* row : rows) {
          const FeatureValue& v = row->Get(f);
          if (v.is_missing() || v.type() != FeatureType::kNumeric) continue;
          sum += v.numeric();
          sum_sq += v.numeric() * v.numeric();
          ++count;
        }
        if (count >= 2) {
          slot.mean = sum / count;
          const double var =
              std::max(1e-12, sum_sq / count - slot.mean * slot.mean);
          slot.inv_std = 1.0 / std::sqrt(var);
        }
        break;
      }
      case FeatureType::kEmbedding:
        if (def.cardinality <= 0) {
          return Status::InvalidArgument("embedding feature " + def.name +
                                         " has no declared dimension");
        }
        slot.width = static_cast<uint32_t>(def.cardinality);
        break;
    }
    offset += slot.width;
    if (encoder.options_.add_missing_indicators) {
      slot.missing_slot = offset++;
    }
    encoder.slots_.push_back(slot);
  }
  encoder.dim_ = offset;
  return encoder;
}

SparseRow FeatureEncoder::Encode(const FeatureVector& row) const {
  SparseRow out;
  for (const Slot& slot : slots_) {
    const FeatureValue& v = row.Get(slot.feature);
    const bool usable = !v.is_missing() && v.type() == slot.type;
    if (!usable) {
      if (options_.add_missing_indicators) out.Add(slot.missing_slot, 1.0f);
      continue;
    }
    switch (slot.type) {
      case FeatureType::kCategorical: {
        const auto& cats = v.categories();
        const float value =
            options_.normalize_multihot && cats.size() > 1
                ? 1.0f / std::sqrt(static_cast<float>(cats.size()))
                : 1.0f;
        for (int32_t c : cats) {
          if (c < 0 || static_cast<uint32_t>(c) >= slot.width) continue;
          out.Add(slot.offset + static_cast<uint32_t>(c), value);
        }
        break;
      }
      case FeatureType::kNumeric:
        out.Add(slot.offset, static_cast<float>((v.numeric() - slot.mean) *
                                                slot.inv_std));
        break;
      case FeatureType::kEmbedding: {
        const auto& emb = v.embedding();
        for (uint32_t i = 0; i < slot.width && i < emb.size(); ++i) {
          out.Add(slot.offset + i, emb[i]);
        }
        break;
      }
    }
  }
  return out;
}

void Dataset::Append(const Dataset& other) {
  CM_CHECK(dim == other.dim) << "appending datasets of different dims";
  examples.insert(examples.end(), other.examples.begin(),
                  other.examples.end());
}

}  // namespace crossmodal
