// FeatureEncoder: common-feature-space rows -> sparse model inputs.
//
// Categorical features become multi-hot blocks sized by their declared
// vocabulary; numeric features are standardized (mean/std fit on training
// rows); embeddings pass through; every feature gets a missing-indicator
// slot so models can distinguish absent from zero (modality-specific
// features are systematically missing for the other modality in early
// fusion, §5).

#ifndef CROSSMODAL_ML_ENCODER_H_
#define CROSSMODAL_ML_ENCODER_H_

#include <vector>

#include "features/feature_schema.h"
#include "features/feature_vector.h"
#include "ml/dataset.h"
#include "util/result.h"

namespace crossmodal {

/// Encoder configuration.
struct EncoderOptions {
  /// Features to encode, in order. Must be non-empty.
  std::vector<FeatureId> features;
  bool add_missing_indicators = true;
  /// Multi-hot values are scaled by 1/sqrt(set size) when true, keeping
  /// rows with many categories from dominating the linear layer.
  bool normalize_multihot = true;
};

/// Fitted encoder (immutable after Fit).
class FeatureEncoder {
 public:
  /// Fits numeric standardization on `rows` (typically the training split).
  /// Fails when options.features is empty or names an unknown feature.
  [[nodiscard]] static Result<FeatureEncoder> Fit(const FeatureSchema& schema,
                                    const std::vector<const FeatureVector*>& rows,
                                    EncoderOptions options);

  /// Total encoded dimensionality.
  size_t dim() const { return dim_; }

  /// Encodes one row.
  SparseRow Encode(const FeatureVector& row) const;

  const std::vector<FeatureId>& features() const { return options_.features; }

 private:
  struct Slot {
    FeatureId feature;
    FeatureType type;
    uint32_t offset = 0;    ///< First dense index of this feature's block.
    uint32_t width = 0;     ///< Block width (vocab, 1, or embedding dim).
    uint32_t missing_slot = 0;  ///< Index of the missing indicator.
    double mean = 0.0, inv_std = 1.0;  ///< Numeric standardization.
  };

  EncoderOptions options_;
  std::vector<Slot> slots_;
  size_t dim_ = 0;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_ML_ENCODER_H_
