// Unified model training entry point + the "Vizier-lite" grid tuner (§6.3).

#ifndef CROSSMODAL_ML_TRAINER_H_
#define CROSSMODAL_ML_TRAINER_H_

#include <vector>

#include "ml/dataset.h"
#include "ml/model.h"

namespace crossmodal {

/// Which end model to train (the two the paper's TFX pipelines support).
enum class ModelKind { kLogisticRegression, kMlp };

const char* ModelKindName(ModelKind kind);

/// Full model specification.
struct ModelSpec {
  ModelKind kind = ModelKind::kMlp;
  TrainOptions train;
  std::vector<int> hidden = {32};  ///< MLP only.
  /// Number of models trained with derived seeds and averaged (seed
  /// ensembling); > 1 substantially reduces training variance on
  /// imbalanced AUPRC at proportional training cost.
  int ensemble_size = 1;
};

/// Trains the specified model on `data`.
[[nodiscard]] Result<ModelPtr> TrainModel(const Dataset& data, const ModelSpec& spec);

/// Grid-search tuning configuration.
struct TunerOptions {
  std::vector<double> learning_rates = {0.01, 0.03, 0.1};
  std::vector<double> l2s = {1e-6, 1e-4};
  /// Candidate hidden widths (MLP only; each entry is a full stack).
  std::vector<std::vector<int>> hidden_stacks = {{16}, {32}};
};

/// Result of a tuning run.
struct TuneResult {
  ModelSpec best_spec;
  double best_val_auprc = 0.0;
  size_t trials = 0;
};

/// Deterministic grid search maximizing validation AUPRC (validation targets
/// must be hard labels). The stand-in for the paper's Vizier service.
[[nodiscard]] Result<TuneResult> GridSearch(const Dataset& train, const Dataset& val,
                              const ModelSpec& base,
                              const TunerOptions& options);

}  // namespace crossmodal

#endif  // CROSSMODAL_ML_TRAINER_H_
