// Fully-connected feed-forward network (ReLU hidden layers, sigmoid output)
// trained by minibatch Adam with manual backprop on soft targets.

#ifndef CROSSMODAL_ML_MLP_H_
#define CROSSMODAL_ML_MLP_H_

#include <vector>

#include "ml/model.h"

namespace crossmodal {

/// MLP hyperparameters.
struct MlpOptions {
  TrainOptions train;
  /// Hidden layer widths, e.g. {32} or {64, 32}. Must be non-empty.
  std::vector<int> hidden = {32};
  double init_scale = 0.2;  ///< He-style init scale multiplier.
};

/// The fully-connected DNN of the paper's TFX pipelines.
class Mlp : public Model {
 public:
  /// Trains on `data`; fails on an empty dataset or empty hidden spec.
  [[nodiscard]] static Result<Mlp> Train(const Dataset& data, const MlpOptions& options);

  double Predict(const SparseRow& x) const override;
  /// Last hidden layer activations (the embedding fusion architectures use).
  std::vector<double> Embed(const SparseRow& x) const override;
  size_t embed_dim() const override;
  double PredictFromEmbedding(const std::vector<double>& e) const override;
  size_t num_parameters() const override;

 private:
  /// Forward pass; returns all layer activations (activations[0] unused for
  /// the sparse input). `acts[l]` is layer l's post-ReLU output.
  void Forward(const SparseRow& x,
               std::vector<std::vector<double>>* acts) const;

  size_t input_dim_ = 0;
  std::vector<int> hidden_;
  /// weights_[l]: layer l weight matrix. Layer 0 is stored input-major
  /// ([input_dim][h0]) for sparse forward passes; later layers output-major.
  std::vector<std::vector<double>> weights_;
  std::vector<std::vector<double>> biases_;
  std::vector<double> out_weights_;
  double out_bias_ = 0.0;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_ML_MLP_H_
