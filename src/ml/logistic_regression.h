// L2-regularized logistic regression trained with Adam on soft targets.

#ifndef CROSSMODAL_ML_LOGISTIC_REGRESSION_H_
#define CROSSMODAL_ML_LOGISTIC_REGRESSION_H_

#include <vector>

#include "ml/model.h"

namespace crossmodal {

/// Linear model over sparse rows; Embed() returns the single logit.
class LogisticRegression : public Model {
 public:
  /// Trains on `data` (soft targets) with the given options. Fails on an
  /// empty dataset.
  [[nodiscard]] static Result<LogisticRegression> Train(const Dataset& data,
                                          const TrainOptions& options);

  double Predict(const SparseRow& x) const override;
  std::vector<double> Embed(const SparseRow& x) const override;
  size_t embed_dim() const override { return 1; }
  double PredictFromEmbedding(const std::vector<double>& e) const override;
  size_t num_parameters() const override { return weights_.size() + 1; }

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_ML_LOGISTIC_REGRESSION_H_
