// Encoded training data: sparse rows with soft (probabilistic) targets.

#ifndef CROSSMODAL_ML_DATASET_H_
#define CROSSMODAL_ML_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"

namespace crossmodal {

/// A sparse feature row: (index, value) pairs, indices strictly increasing.
struct SparseRow {
  std::vector<std::pair<uint32_t, float>> entries;

  void Add(uint32_t index, float value) {
    CM_DCHECK(entries.empty() || index > entries.back().first)
        << "sparse indices must be strictly increasing";
    entries.emplace_back(index, value);
  }

  /// Dot product with a dense weight vector.
  double Dot(const std::vector<double>& weights) const {
    double acc = 0.0;
    for (const auto& [i, v] : entries) {
      CM_DCHECK_LT(i, weights.size());
      acc += weights[i] * v;
    }
    return acc;
  }
};

/// One training example. `target` is a soft label in [0, 1] — hard labels
/// are 0/1, weak-supervision labels are the generative-model posterior; the
/// trainers' noise-aware cross-entropy consumes it directly.
struct Example {
  SparseRow x;
  float target = 0.0f;
  float weight = 1.0f;
};

/// An encoded dataset.
struct Dataset {
  size_t dim = 0;
  std::vector<Example> examples;

  size_t size() const { return examples.size(); }
  bool empty() const { return examples.empty(); }

  /// Appends another dataset's examples (dims must match).
  void Append(const Dataset& other);
};

}  // namespace crossmodal

#endif  // CROSSMODAL_ML_DATASET_H_
