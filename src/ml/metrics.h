// Binary-classification metrics; AUPRC is the paper's headline metric (§6.3).

#ifndef CROSSMODAL_ML_METRICS_H_
#define CROSSMODAL_ML_METRICS_H_

#include <cstddef>
#include <vector>

#include "util/result.h"

namespace crossmodal {

/// Validates a (scores, labels) pair: equal sizes, labels in {0, 1}, every
/// score finite. NaN scores would silently mis-rank (NaN comparisons are
/// false, so NaN points sink to an arbitrary end of the ordering); callers
/// computing headline numbers should reject them instead.
[[nodiscard]] Status ValidateScoredLabels(const std::vector<double>& scores,
                                          const std::vector<int>& labels);

/// AveragePrecision with input validation: InvalidArgument on size
/// mismatch, out-of-domain labels, or non-finite scores.
[[nodiscard]] Result<double> CheckedAveragePrecision(
    const std::vector<double>& scores, const std::vector<int>& labels);

/// RocAuc with the same validation.
[[nodiscard]] Result<double> CheckedRocAuc(const std::vector<double>& scores,
                                           const std::vector<int>& labels);

/// Area under the precision-recall curve, computed as average precision
/// (the standard step-wise interpolation). Labels are {0,1}; higher scores
/// mean more positive. Returns 0 when there are no positives.
double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<int>& labels);

/// Area under the ROC curve via the rank statistic (ties averaged).
/// Returns 0.5 when one class is absent.
double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels);

/// Precision / recall / F1 of `score >= threshold` decisions.
struct PrfMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};
PrfMetrics PrecisionRecallF1(const std::vector<double>& scores,
                             const std::vector<int>& labels,
                             double threshold = 0.5);

/// One point of a PR curve.
struct PrPoint {
  double recall = 0.0;
  double precision = 0.0;
  double threshold = 0.0;
};

/// The full precision-recall curve (descending threshold order).
std::vector<PrPoint> PrecisionRecallCurve(const std::vector<double>& scores,
                                          const std::vector<int>& labels);

}  // namespace crossmodal

#endif  // CROSSMODAL_ML_METRICS_H_
