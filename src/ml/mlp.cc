#include "ml/mlp.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/parallel.h"
#include "util/random.h"

namespace crossmodal {

namespace {

/// Dense Adam optimizer state for one parameter vector.
struct AdamState {
  std::vector<double> m, v;
  explicit AdamState(size_t n) : m(n, 0.0), v(n, 0.0) {}

  void Step(std::vector<double>* params, const std::vector<double>& grad,
            double lr, double corr1, double corr2) {
    constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
    for (size_t i = 0; i < params->size(); ++i) {
      m[i] = kBeta1 * m[i] + (1.0 - kBeta1) * grad[i];
      v[i] = kBeta2 * v[i] + (1.0 - kBeta2) * grad[i] * grad[i];
      (*params)[i] -= lr * (m[i] / corr1) / (std::sqrt(v[i] / corr2) + kEps);
    }
  }
};

}  // namespace

void Mlp::Forward(const SparseRow& x,
                  std::vector<std::vector<double>>* acts) const {
  const size_t num_hidden = hidden_.size();
  acts->resize(num_hidden);
  // Layer 0: sparse input x dense [input_dim][h0] matrix.
  const size_t h0 = static_cast<size_t>(hidden_[0]);
  auto& a0 = (*acts)[0];
  a0.assign(h0, 0.0);
  for (const auto& [idx, val] : x.entries) {
    const double* w_row = &weights_[0][static_cast<size_t>(idx) * h0];
    for (size_t j = 0; j < h0; ++j) a0[j] += w_row[j] * val;
  }
  for (size_t j = 0; j < h0; ++j) {
    a0[j] = std::max(0.0, a0[j] + biases_[0][j]);
  }
  // Later layers: dense, output-major [h_l][h_{l-1}].
  for (size_t l = 1; l < num_hidden; ++l) {
    const size_t hl = static_cast<size_t>(hidden_[l]);
    const size_t hp = static_cast<size_t>(hidden_[l - 1]);
    auto& al = (*acts)[l];
    al.assign(hl, 0.0);
    const auto& prev = (*acts)[l - 1];
    for (size_t j = 0; j < hl; ++j) {
      const double* w_row = &weights_[l][j * hp];
      double acc = biases_[l][j];
      for (size_t i = 0; i < hp; ++i) acc += w_row[i] * prev[i];
      al[j] = std::max(0.0, acc);
    }
  }
}

Result<Mlp> Mlp::Train(const Dataset& data, const MlpOptions& options) {
  if (data.empty()) return Status::InvalidArgument("empty training set");
  if (options.hidden.empty()) {
    return Status::InvalidArgument("MLP needs at least one hidden layer");
  }
  for (int h : options.hidden) {
    if (h <= 0) return Status::InvalidArgument("hidden width must be > 0");
  }

  Mlp model;
  model.input_dim_ = data.dim;
  model.hidden_ = options.hidden;
  Rng rng(options.train.seed);

  const size_t num_hidden = model.hidden_.size();
  model.weights_.resize(num_hidden);
  model.biases_.resize(num_hidden);
  {
    const size_t h0 = static_cast<size_t>(model.hidden_[0]);
    model.weights_[0].resize(data.dim * h0);
    const double s0 = options.init_scale * std::sqrt(2.0 / std::max<size_t>(
                                                              1, data.dim));
    for (auto& w : model.weights_[0]) w = rng.Normal(0.0, s0);
    model.biases_[0].assign(h0, 0.0);
  }
  for (size_t l = 1; l < num_hidden; ++l) {
    const size_t hl = static_cast<size_t>(model.hidden_[l]);
    const size_t hp = static_cast<size_t>(model.hidden_[l - 1]);
    model.weights_[l].resize(hl * hp);
    const double sl = options.init_scale * std::sqrt(2.0 / hp);
    for (auto& w : model.weights_[l]) w = rng.Normal(0.0, sl);
    model.biases_[l].assign(hl, 0.0);
  }
  const size_t h_last = static_cast<size_t>(model.hidden_.back());
  model.out_weights_.resize(h_last);
  for (auto& w : model.out_weights_) {
    w = rng.Normal(0.0, options.init_scale * std::sqrt(2.0 / h_last));
  }
  model.out_bias_ = 0.0;

  // Adam states + gradient accumulators mirroring the parameter shapes.
  std::vector<AdamState> adam_w, adam_b;
  std::vector<std::vector<double>> grad_w(num_hidden), grad_b(num_hidden);
  for (size_t l = 0; l < num_hidden; ++l) {
    adam_w.emplace_back(model.weights_[l].size());
    adam_b.emplace_back(model.biases_[l].size());
    grad_w[l].assign(model.weights_[l].size(), 0.0);
    grad_b[l].assign(model.biases_[l].size(), 0.0);
  }
  AdamState adam_out(h_last), adam_out_b(1);
  std::vector<double> grad_out(h_last, 0.0), grad_out_b(1, 0.0);

  const TrainOptions& t = options.train;

  // Per-slice gradient partials + forward/backward workspaces. Each of the
  // kGradSlices fixed batch slices accumulates into its own buffers while
  // reading the (frozen-within-batch) model weights; the partials fold into
  // grad_* in slice order before the Adam step, so the summation tree — and
  // therefore every fitted weight — is bit-identical at any thread count.
  struct SliceGrads {
    std::vector<std::vector<double>> grad_w, grad_b;
    std::vector<double> grad_out;
    double grad_out_b = 0.0;
    std::vector<std::vector<double>> acts, delta;  // workspaces
  };
  StagePool stage_pool(t.parallel);
  std::vector<SliceGrads> slices(kGradSlices);
  for (auto& s : slices) {
    s.grad_w.resize(num_hidden);
    s.grad_b.resize(num_hidden);
    for (size_t l = 0; l < num_hidden; ++l) {
      s.grad_w[l].assign(model.weights_[l].size(), 0.0);
      s.grad_b[l].assign(model.biases_[l].size(), 0.0);
    }
    s.grad_out.assign(h_last, 0.0);
    s.delta.resize(num_hidden);
  }

  double beta1_t = 1.0, beta2_t = 1.0;
  const size_t n = data.size();

  for (int epoch = 0; epoch < t.epochs; ++epoch) {
    const auto perm = rng.Permutation(n);
    for (size_t start = 0; start < n; start += t.batch_size) {
      const size_t end = std::min(n, start + t.batch_size);
      const size_t batch = end - start;
      const size_t used_slices = std::min<size_t>(kGradSlices, batch);
      for (size_t si = 0; si < used_slices; ++si) {
        auto& s = slices[si];
        for (size_t l = 0; l < num_hidden; ++l) {
          std::fill(s.grad_w[l].begin(), s.grad_w[l].end(), 0.0);
          std::fill(s.grad_b[l].begin(), s.grad_b[l].end(), 0.0);
        }
        std::fill(s.grad_out.begin(), s.grad_out.end(), 0.0);
        s.grad_out_b = 0.0;
      }

      ForEachSlice(stage_pool.get(), batch, kGradSlices,
                   [&](size_t slice, size_t s_begin, size_t s_end) {
        auto& s = slices[slice];
        for (size_t k = s_begin; k < s_end; ++k) {
          const Example& ex = data.examples[perm[start + k]];
          model.Forward(ex.x, &s.acts);
          const auto& last = s.acts.back();
          double logit = model.out_bias_;
          for (size_t j = 0; j < h_last; ++j) {
            logit += model.out_weights_[j] * last[j];
          }
          const double p = Sigmoid(logit);
          double w = ex.weight;
          if (ex.target > 0.5) w *= t.positive_weight;
          const double g_out = w * (p - ex.target);  // dL/dlogit

          // Output layer gradients.
          for (size_t j = 0; j < h_last; ++j) s.grad_out[j] += g_out * last[j];
          s.grad_out_b += g_out;

          // Backprop through hidden layers.
          auto& d_last = s.delta[num_hidden - 1];
          d_last.assign(h_last, 0.0);
          for (size_t j = 0; j < h_last; ++j) {
            if (last[j] > 0.0) d_last[j] = g_out * model.out_weights_[j];
          }
          for (size_t l = num_hidden - 1; l >= 1; --l) {
            const size_t hl = static_cast<size_t>(model.hidden_[l]);
            const size_t hp = static_cast<size_t>(model.hidden_[l - 1]);
            const auto& prev = s.acts[l - 1];
            auto& d_prev = s.delta[l - 1];
            d_prev.assign(hp, 0.0);
            for (size_t j = 0; j < hl; ++j) {
              const double dj = s.delta[l][j];
              if (dj == 0.0) continue;
              double* gw_row = &s.grad_w[l][j * hp];
              const double* w_row = &model.weights_[l][j * hp];
              for (size_t i = 0; i < hp; ++i) {
                gw_row[i] += dj * prev[i];
                if (prev[i] > 0.0) d_prev[i] += dj * w_row[i];
              }
              s.grad_b[l][j] += dj;
            }
          }
          // Input layer gradients (sparse).
          const size_t h0 = static_cast<size_t>(model.hidden_[0]);
          for (const auto& [idx, val] : ex.x.entries) {
            double* gw_row = &s.grad_w[0][static_cast<size_t>(idx) * h0];
            const auto& d0 = s.delta[0];
            for (size_t j = 0; j < h0; ++j) gw_row[j] += d0[j] * val;
          }
          for (size_t j = 0; j < h0; ++j) s.grad_b[0][j] += s.delta[0][j];
        }
      });

      // Fold slice partials in fixed slice order.
      for (size_t l = 0; l < num_hidden; ++l) {
        std::fill(grad_w[l].begin(), grad_w[l].end(), 0.0);
        std::fill(grad_b[l].begin(), grad_b[l].end(), 0.0);
      }
      std::fill(grad_out.begin(), grad_out.end(), 0.0);
      grad_out_b[0] = 0.0;
      for (size_t si = 0; si < used_slices; ++si) {
        const auto& s = slices[si];
        for (size_t l = 0; l < num_hidden; ++l) {
          for (size_t i = 0; i < grad_w[l].size(); ++i) {
            grad_w[l][i] += s.grad_w[l][i];
          }
          for (size_t i = 0; i < grad_b[l].size(); ++i) {
            grad_b[l][i] += s.grad_b[l][i];
          }
        }
        for (size_t j = 0; j < h_last; ++j) grad_out[j] += s.grad_out[j];
        grad_out_b[0] += s.grad_out_b;
      }

      // Adam step (gradients averaged over the batch; L2 added).
      const double scale = 1.0 / static_cast<double>(end - start);
      beta1_t *= 0.9;
      beta2_t *= 0.999;
      const double corr1 = 1.0 - beta1_t, corr2 = 1.0 - beta2_t;
      for (size_t l = 0; l < num_hidden; ++l) {
        for (size_t i = 0; i < grad_w[l].size(); ++i) {
          grad_w[l][i] = grad_w[l][i] * scale + t.l2 * model.weights_[l][i];
        }
        for (auto& g : grad_b[l]) g *= scale;
        adam_w[l].Step(&model.weights_[l], grad_w[l], t.learning_rate, corr1,
                       corr2);
        adam_b[l].Step(&model.biases_[l], grad_b[l], t.learning_rate, corr1,
                       corr2);
      }
      for (size_t j = 0; j < h_last; ++j) {
        grad_out[j] = grad_out[j] * scale + t.l2 * model.out_weights_[j];
      }
      grad_out_b[0] *= scale;
      adam_out.Step(&model.out_weights_, grad_out, t.learning_rate, corr1,
                    corr2);
      std::vector<double> ob{model.out_bias_};
      adam_out_b.Step(&ob, grad_out_b, t.learning_rate, corr1, corr2);
      model.out_bias_ = ob[0];
    }
  }
  return model;
}

double Mlp::Predict(const SparseRow& x) const {
  std::vector<std::vector<double>> acts;
  Forward(x, &acts);
  double logit = out_bias_;
  const auto& last = acts.back();
  for (size_t j = 0; j < last.size(); ++j) logit += out_weights_[j] * last[j];
  return Sigmoid(logit);
}

std::vector<double> Mlp::Embed(const SparseRow& x) const {
  std::vector<std::vector<double>> acts;
  Forward(x, &acts);
  return acts.back();
}

double Mlp::PredictFromEmbedding(const std::vector<double>& e) const {
  CM_CHECK(e.size() == out_weights_.size());
  double logit = out_bias_;
  for (size_t j = 0; j < e.size(); ++j) logit += out_weights_[j] * e[j];
  return Sigmoid(logit);
}

size_t Mlp::embed_dim() const {
  return static_cast<size_t>(hidden_.back());
}

size_t Mlp::num_parameters() const {
  size_t total = out_weights_.size() + 1;
  for (size_t l = 0; l < weights_.size(); ++l) {
    total += weights_[l].size() + biases_[l].size();
  }
  return total;
}

}  // namespace crossmodal
