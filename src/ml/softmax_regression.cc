#include "ml/softmax_regression.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace crossmodal {

Result<SoftmaxRegression> SoftmaxRegression::Train(
    const MulticlassDataset& data, const TrainOptions& options) {
  if (data.examples.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  if (data.num_classes < 2) {
    return Status::InvalidArgument("need at least 2 classes");
  }
  for (const auto& ex : data.examples) {
    if (ex.target.size() != static_cast<size_t>(data.num_classes)) {
      return Status::InvalidArgument("target arity mismatch");
    }
  }

  SoftmaxRegression model;
  model.num_classes_ = data.num_classes;
  model.dim_ = data.dim;
  const size_t K = static_cast<size_t>(data.num_classes);
  model.weights_.assign(K * data.dim, 0.0);
  model.biases_.assign(K, 0.0);

  std::vector<double> mw(model.weights_.size(), 0.0),
      vw(model.weights_.size(), 0.0);
  std::vector<double> mb(K, 0.0), vb(K, 0.0);
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  double b1t = 1.0, b2t = 1.0;

  std::vector<double> grad_w(model.weights_.size(), 0.0);
  std::vector<double> grad_b(K, 0.0);
  std::vector<size_t> touched;  // touched weight indices per batch

  Rng rng(options.seed);
  const size_t n = data.examples.size();
  std::vector<double> probs(K);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const auto perm = rng.Permutation(n);
    for (size_t start = 0; start < n; start += options.batch_size) {
      const size_t end = std::min(n, start + options.batch_size);
      touched.clear();
      std::fill(grad_b.begin(), grad_b.end(), 0.0);
      for (size_t k = start; k < end; ++k) {
        const MulticlassExample& ex = data.examples[perm[k]];
        // Forward.
        double max_z = -1e300;
        for (size_t c = 0; c < K; ++c) {
          double z = model.biases_[c];
          for (const auto& [idx, val] : ex.x.entries) {
            z += model.weights_[c * data.dim + idx] * val;
          }
          probs[c] = z;
          max_z = std::max(max_z, z);
        }
        double total = 0.0;
        for (size_t c = 0; c < K; ++c) {
          probs[c] = std::exp(probs[c] - max_z);
          total += probs[c];
        }
        for (size_t c = 0; c < K; ++c) probs[c] /= total;
        // Backward: dL/dz_c = p_c - target_c.
        for (size_t c = 0; c < K; ++c) {
          const double g = ex.weight * (probs[c] - ex.target[c]);
          grad_b[c] += g;
          for (const auto& [idx, val] : ex.x.entries) {
            const size_t w_idx = c * data.dim + idx;
            if (grad_w[w_idx] == 0.0) touched.push_back(w_idx);
            grad_w[w_idx] += g * val;
          }
        }
      }
      const double scale = 1.0 / static_cast<double>(end - start);
      b1t *= beta1;
      b2t *= beta2;
      const double c1 = 1.0 - b1t, c2 = 1.0 - b2t;
      for (size_t idx : touched) {
        const double g = grad_w[idx] * scale + options.l2 * model.weights_[idx];
        grad_w[idx] = 0.0;
        mw[idx] = beta1 * mw[idx] + (1.0 - beta1) * g;
        vw[idx] = beta2 * vw[idx] + (1.0 - beta2) * g * g;
        model.weights_[idx] -= options.learning_rate * (mw[idx] / c1) /
                               (std::sqrt(vw[idx] / c2) + eps);
      }
      for (size_t c = 0; c < K; ++c) {
        const double g = grad_b[c] * scale;
        mb[c] = beta1 * mb[c] + (1.0 - beta1) * g;
        vb[c] = beta2 * vb[c] + (1.0 - beta2) * g * g;
        model.biases_[c] -= options.learning_rate * (mb[c] / c1) /
                            (std::sqrt(vb[c] / c2) + eps);
      }
    }
  }
  return model;
}

std::vector<double> SoftmaxRegression::Predict(const SparseRow& x) const {
  const size_t K = static_cast<size_t>(num_classes_);
  std::vector<double> probs(K);
  double max_z = -1e300;
  for (size_t c = 0; c < K; ++c) {
    double z = biases_[c];
    for (const auto& [idx, val] : x.entries) {
      z += weights_[c * dim_ + idx] * val;
    }
    probs[c] = z;
    max_z = std::max(max_z, z);
  }
  double total = 0.0;
  for (size_t c = 0; c < K; ++c) {
    probs[c] = std::exp(probs[c] - max_z);
    total += probs[c];
  }
  for (size_t c = 0; c < K; ++c) probs[c] /= total;
  return probs;
}

int32_t SoftmaxRegression::PredictClass(const SparseRow& x) const {
  const auto probs = Predict(x);
  return static_cast<int32_t>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

double MulticlassAccuracy(const std::vector<int32_t>& predicted,
                          const std::vector<int32_t>& truth) {
  CM_CHECK(predicted.size() == truth.size());
  if (predicted.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    correct += (predicted[i] == truth[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

double MacroF1(const std::vector<int32_t>& predicted,
               const std::vector<int32_t>& truth, int32_t num_classes) {
  CM_CHECK(predicted.size() == truth.size());
  double total_f1 = 0.0;
  for (int32_t c = 0; c < num_classes; ++c) {
    size_t tp = 0, fp = 0, fn = 0;
    for (size_t i = 0; i < predicted.size(); ++i) {
      if (predicted[i] == c && truth[i] == c) ++tp;
      if (predicted[i] == c && truth[i] != c) ++fp;
      if (predicted[i] != c && truth[i] == c) ++fn;
    }
    const double precision =
        tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
    const double recall =
        tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
    total_f1 += precision + recall > 0.0
                    ? 2.0 * precision * recall / (precision + recall)
                    : 0.0;
  }
  return total_f1 / static_cast<double>(num_classes);
}

}  // namespace crossmodal
