// Checked string-to-number parsing shared by the TSV readers and the CLI
// tools. std::atoi/atof silently map garbage to 0, which turns a typo'd
// flag (`--task=abc`) into a plausible-looking run; these helpers reject
// anything that is not a complete, in-range literal.

#ifndef CROSSMODAL_UTIL_PARSE_NUMBER_H_
#define CROSSMODAL_UTIL_PARSE_NUMBER_H_

#include <cstdint>
#include <string>

#include "util/result.h"

namespace crossmodal {

/// Parses a whole-string base-10 signed integer; rejects trailing garbage,
/// empty input, and out-of-range values.
[[nodiscard]] Result<int64_t> ParseInt64(const std::string& text);

/// Parses a whole-string base-10 unsigned integer.
[[nodiscard]] Result<uint64_t> ParseUint64(const std::string& text);

/// Parses a whole-string floating-point literal (accepts inf/nan forms).
[[nodiscard]] Result<double> ParseDouble(const std::string& text);

/// Like ParseDouble but additionally rejects non-finite values — for fields
/// that must be real measurements or probabilities (e.g. weak-label
/// posteriors), where a NaN silently poisons every downstream reduction.
[[nodiscard]] Result<double> ParseFiniteDouble(const std::string& text);

}  // namespace crossmodal

#endif  // CROSSMODAL_UTIL_PARSE_NUMBER_H_
