// Fixed-size thread pool used by the dataflow executor and batch trainers.

#ifndef CROSSMODAL_UTIL_THREAD_POOL_H_
#define CROSSMODAL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace crossmodal {

/// A fixed pool of worker threads executing submitted closures FIFO.
///
/// Thread-safe. Destruction drains the queue (all submitted work completes)
/// before joining workers.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues a task. May be called from worker threads. Tasks must not
  /// throw: an exception escaping a bare Submit task terminates the process
  /// (it would otherwise unwind a worker thread). Use ParallelFor for work
  /// that may throw.
  void Submit(std::function<void()> task) CM_LOCKS_EXCLUDED(mu_);

  /// Blocks until every task submitted so far (including tasks they spawn)
  /// has completed. Must not be called from a worker thread (it would wait
  /// for its own task to finish).
  void Wait() CM_LOCKS_EXCLUDED(mu_);

  size_t num_threads() const { return threads_.size(); }

  /// Convenience: runs fn(i) for i in [0, n) across the pool and waits.
  /// Work is chunked to limit scheduling overhead.
  ///
  /// Nesting: called from any pool's worker thread (e.g. from inside
  /// another ParallelFor body), the loop runs inline on the calling worker
  /// — submitting and waiting there could deadlock on its own task.
  ///
  /// Exceptions: if any fn(i) throws, every remaining index still runs
  /// (other chunks are not cancelled), and the exception thrown from the
  /// lowest-indexed chunk is rethrown here after all work has drained, so
  /// the surfaced error does not depend on thread timing.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn)
      CM_LOCKS_EXCLUDED(mu_);

 private:
  void WorkerLoop() CM_LOCKS_EXCLUDED(mu_);

  std::vector<std::thread> threads_;
  Mutex mu_{"thread_pool"};
  std::deque<std::function<void()>> queue_ CM_GUARDED_BY(mu_);
  // condition_variable_any waits directly on MutexLock (see util/mutex.h),
  // keeping the annotated capability in view of the analysis.
  std::condition_variable_any work_available_;
  std::condition_variable_any idle_;
  size_t in_flight_ CM_GUARDED_BY(mu_) = 0;  // queued + running tasks
  bool shutting_down_ CM_GUARDED_BY(mu_) = false;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_UTIL_THREAD_POOL_H_
