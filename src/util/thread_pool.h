// Fixed-size thread pool used by the dataflow executor and batch trainers.

#ifndef CROSSMODAL_UTIL_THREAD_POOL_H_
#define CROSSMODAL_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace crossmodal {

/// A fixed pool of worker threads executing submitted closures FIFO.
///
/// Thread-safe. Destruction drains the queue (all submitted work completes)
/// before joining workers.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues a task. May be called from worker threads.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far (including tasks they spawn)
  /// has completed.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  /// Convenience: runs fn(i) for i in [0, n) across the pool and waits.
  /// Work is chunked to limit scheduling overhead.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  size_t in_flight_ = 0;  // queued + running tasks
  bool shutting_down_ = false;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_UTIL_THREAD_POOL_H_
