#include "util/thread_pool.h"

#include <algorithm>
#include <cstddef>
#include <exception>
#include <utility>

namespace crossmodal {

namespace {
// True on threads currently executing a task of *any* ThreadPool; lets
// ParallelFor detect re-entry from a worker and degrade to an inline loop
// instead of deadlocking in Wait() on its own task.
thread_local bool t_in_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (in_flight_ != 0) idle_.wait(lock);
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutting_down_ && queue_.empty()) work_available_.wait(lock);
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(&mu_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (t_in_pool_worker) {
    // Nested call from a worker: run inline (see header contract).
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const size_t workers = num_threads();
  const size_t chunk = std::max<size_t>(1, (n + workers * 4 - 1) / (workers * 4));

  // First-by-index exception capture: chunks race, so "first thrown" is
  // nondeterministic — keep the exception from the lowest chunk begin
  // instead, making the rethrown error independent of scheduling.
  Mutex error_mu{"parallel_for_error"};
  std::exception_ptr error;
  size_t error_begin = 0;
  bool has_error = false;

  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    Submit([begin, end, &fn, &error_mu, &error, &error_begin, &has_error] {
      try {
        for (size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        MutexLock lock(&error_mu);
        if (!has_error || begin < error_begin) {
          has_error = true;
          error_begin = begin;
          error = std::current_exception();
        }
      }
    });
  }
  Wait();
  if (has_error) std::rethrow_exception(error);
}

}  // namespace crossmodal
