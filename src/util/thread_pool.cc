#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace crossmodal {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (in_flight_ != 0) idle_.wait(lock);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutting_down_ && queue_.empty()) work_available_.wait(lock);
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(&mu_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t workers = num_threads();
  const size_t chunk = std::max<size_t>(1, (n + workers * 4 - 1) / (workers * 4));
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

}  // namespace crossmodal
