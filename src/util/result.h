// Result<T>: a value or a Status, in the Arrow arrow::Result style.

#ifndef CROSSMODAL_UTIL_RESULT_H_
#define CROSSMODAL_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace crossmodal {

/// Holds either a successfully computed T or the Status explaining why the
/// computation failed. Accessing the value of a failed Result is a
/// programming error (asserted in debug builds).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result (implicit, to allow `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result (implicit, to allow `return status;`).
  /// `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// Accessors for the contained value; only valid when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` if this Result failed.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

}  // namespace crossmodal

#define CM_CONCAT_IMPL(a, b) a##b
#define CM_CONCAT(a, b) CM_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on failure returns its Status, on
/// success assigns the value to `lhs` (which may be a declaration).
#define CM_ASSIGN_OR_RETURN(lhs, expr)                        \
  CM_ASSIGN_OR_RETURN_IMPL(CM_CONCAT(_cm_result_, __LINE__), lhs, expr)

#define CM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value();

#endif  // CROSSMODAL_UTIL_RESULT_H_
