// Mini-lockdep: runtime lock-order (deadlock-potential) detection.
//
// Debug and sanitizer builds (any build without NDEBUG) maintain a global
// directed graph over lock *classes*: whenever a thread acquires mutex B
// while holding mutex A, the edge A→B is recorded. If acquiring B would
// close a cycle (B →* A already exists), the acquisition is a lock-order
// inversion — two threads interleaving the two orders can deadlock — and the
// violation handler fires a CM_DCHECK-style fatal report naming both locks,
// even though this particular single-threaded execution got lucky. This is
// the classic lockdep idea: one clean run of each nesting order proves the
// deadlock potential without ever needing the unlucky interleaving.
//
// Lock classes: a crossmodal::Mutex constructed with a name (e.g.
// Mutex("thread_pool")) shares a class with every other mutex of that name,
// so per-instance locks of one subsystem are audited as a family. Unnamed
// mutexes get a per-instance class (no false aliasing across unrelated
// locks; note that a class keyed to a destroyed mutex's address may be
// reused if a new mutex lands on the same address — name hot mutexes).
//
// Release builds (NDEBUG) compile every hook to an empty inline function;
// the graph, the registry, and the per-thread held stack do not exist.
//
// Thread-safe. The detector's own internal lock is a raw std::mutex and is
// never visible to the graph.

#ifndef CROSSMODAL_UTIL_LOCKDEP_H_
#define CROSSMODAL_UTIL_LOCKDEP_H_

#include <cstddef>

namespace crossmodal {
namespace lockdep {

/// True when lock-order auditing is compiled in (builds without NDEBUG:
/// the asan-ubsan and tsan presets, plain Debug builds).
#ifndef NDEBUG
inline constexpr bool kArmed = true;
#else
inline constexpr bool kArmed = false;
#endif

/// Receives one inversion report: acquiring `acquired` while holding `held`
/// would close a cycle in the lock-order graph. The default handler fires
/// CM_DCHECK(false) with both names (fatal). Tests install a capturing
/// handler to assert detection without dying.
using ViolationHandler = void (*)(const char* held_name,
                                  const char* acquired_name);

/// Installs `handler` (nullptr restores the default) and returns the
/// previous handler.
ViolationHandler SetViolationHandler(ViolationHandler handler);

#ifndef NDEBUG
/// Called by Mutex::lock() *before* blocking: checks held→acquired edges
/// for cycles, records new edges, and pushes the lock on the thread's held
/// stack. Re-acquiring a mutex this thread already holds is reported too.
void OnAcquire(const void* lock, const char* name);

/// Called after a successful try_lock: records the lock as held but adds no
/// ordering edges (a failed try_lock cannot deadlock, so trylock nesting
/// does not constrain ordering).
void OnTryAcquire(const void* lock, const char* name);

/// Called by Mutex::unlock(): pops the lock from the thread's held stack
/// (handles out-of-LIFO-order release).
void OnRelease(const void* lock);
#else
inline void OnAcquire(const void*, const char*) {}
inline void OnTryAcquire(const void*, const char*) {}
inline void OnRelease(const void*) {}
#endif

/// Test support: drops every recorded class and edge. Only meaningful while
/// no lock is held anywhere; tests call it between cases so one case's
/// seeded graph cannot leak ordering constraints into the next.
void ResetGraphForTest();

/// Test support: number of distinct held→acquired edges recorded so far.
size_t NumEdgesForTest();

}  // namespace lockdep
}  // namespace crossmodal

#endif  // CROSSMODAL_UTIL_LOCKDEP_H_
