// Deterministic parallel execution: ParallelConfig + fixed-slice helpers.
//
// The pipeline's hot paths (kNN-graph construction, label propagation,
// batch gradient accumulation) parallelize over *slices* whose boundaries
// depend only on the problem size — never on the thread count. Each slice
// owns its outputs (or a private partial accumulator), and cross-slice
// reductions are combined serially in slice order afterwards. Because the
// arithmetic structure is fixed, every ParallelConfig — including
// num_threads = 1, which runs the slices inline without a pool — produces
// bit-identical artifacts; threads only change the schedule. cmaudit and
// tests/parallel_equivalence_test.cc enforce this mechanically.

#ifndef CROSSMODAL_UTIL_PARALLEL_H_
#define CROSSMODAL_UTIL_PARALLEL_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <optional>
#include <utility>

#include "util/thread_pool.h"

namespace crossmodal {

/// How many worker threads a stage may use. The default (1) runs serially
/// with no pool at all; every value yields bit-identical stage artifacts.
struct ParallelConfig {
  size_t num_threads = 1;

  bool enabled() const { return num_threads > 1; }
};

/// [begin, end) of slice `s` when `n` items are cut into `num_slices`
/// near-equal contiguous slices. Depends only on (n, num_slices, s), so a
/// per-slice reduction combined in slice order is independent of the thread
/// count. Slices beyond the item count are empty (begin == end).
inline std::pair<size_t, size_t> SliceBounds(size_t n, size_t num_slices,
                                             size_t s) {
  const size_t base = n / num_slices;
  const size_t rem = n % num_slices;
  const size_t begin = s * base + std::min(s, rem);
  return {begin, begin + base + (s < rem ? 1 : 0)};
}

/// Runs `fn(slice, begin, end)` for every slice of [0, n). With a pool the
/// slices run concurrently (fn must only write slice-owned state); without
/// one they run inline in slice order. Exceptions propagate per
/// ThreadPool::ParallelFor semantics.
inline void ForEachSlice(ThreadPool* pool, size_t n, size_t num_slices,
                         const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0 || num_slices == 0) return;
  if (pool == nullptr) {
    for (size_t s = 0; s < num_slices; ++s) {
      const auto [begin, end] = SliceBounds(n, num_slices, s);
      if (begin < end) fn(s, begin, end);
    }
    return;
  }
  pool->ParallelFor(num_slices, [n, num_slices, &fn](size_t s) {
    const auto [begin, end] = SliceBounds(n, num_slices, s);
    if (begin < end) fn(s, begin, end);
  });
}

/// Lazily materializes a ThreadPool only when the config enables
/// parallelism; get() returns nullptr otherwise (ForEachSlice then runs
/// inline). Stage entry points construct one per call, so a serial config
/// never pays thread-spawn cost.
class StagePool {
 public:
  explicit StagePool(const ParallelConfig& config) {
    if (config.enabled()) pool_.emplace(config.num_threads);
  }

  ThreadPool* get() { return pool_.has_value() ? &*pool_ : nullptr; }

 private:
  std::optional<ThreadPool> pool_;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_UTIL_PARALLEL_H_
