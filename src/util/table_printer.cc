#include "util/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace crossmodal {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  std::string sep;
  for (size_t c = 0; c < header_.size(); ++c) {
    sep += std::string(widths[c], '-') + "  ";
  }
  os << sep << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::Num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string TablePrinter::Factor(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v << "x";
  return ss.str();
}

}  // namespace crossmodal
