// Status: error signalling without exceptions, in the Arrow/RocksDB style.
//
// Library code returns cm::Status (or cm::Result<T>, see result.h) instead of
// throwing. Use the CM_RETURN_IF_ERROR macro to propagate failures.

#ifndef CROSSMODAL_UTIL_STATUS_H_
#define CROSSMODAL_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace crossmodal {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kIOError = 8,
  kUnavailable = 9,
  kDeadlineExceeded = 10,
};

/// Returns a short human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation: either OK, or an error code plus message.
///
/// Status is cheap to move and to copy in the OK case. It must not be
/// silently dropped for fallible operations; callers either handle it or
/// propagate it with CM_RETURN_IF_ERROR.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. Code must not be
  /// kOk; use the default constructor for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  [[nodiscard]] static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  /// A transient failure: the operation may succeed if retried.
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// The operation ran past its deadline (also retryable).
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace crossmodal

/// Propagates a non-OK Status to the caller.
#define CM_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::crossmodal::Status _cm_status = (expr);     \
    if (!_cm_status.ok()) return _cm_status;      \
  } while (false)

#endif  // CROSSMODAL_UTIL_STATUS_H_
