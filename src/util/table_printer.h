// Fixed-width ASCII table printing for benchmark harness output.

#ifndef CROSSMODAL_UTIL_TABLE_PRINTER_H_
#define CROSSMODAL_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace crossmodal {

/// Collects rows of string cells and renders them as an aligned ASCII table
/// (the format every bench binary uses to report paper rows/series).
class TablePrinter {
 public:
  /// Sets the header row; column count of subsequent rows must match.
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row. Short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// Renders the table to `os` with a separator under the header.
  void Print(std::ostream& os) const;

  /// Formats a double with the given precision (helper for cells).
  static std::string Num(double v, int precision = 3);

  /// Formats a multiplicative factor, e.g. "1.52x".
  static std::string Factor(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_UTIL_TABLE_PRINTER_H_
