#include "util/random.h"

#include <cmath>
#include <cstring>
#include <numbers>

#include "util/check.h"

namespace crossmodal {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t DeriveSeed(uint64_t seed, uint64_t key) {
  return SplitMix64(SplitMix64(seed) ^ SplitMix64(key * 0xD6E8FEB86659FD93ULL + 1));
}

uint64_t DeriveSeed(uint64_t seed, const char* key) {
  // FNV-1a over the string, then mixed with the parent seed.
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const char* p = key; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 0x100000001B3ULL;
  }
  return DeriveSeed(seed, h);
}

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) {
    x = SplitMix64(x);
    s = x;
  }
  // xoshiro must not be seeded with all zeros.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

static inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

uint64_t Rng::operator()() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53-bit mantissa from the top bits.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  CM_DCHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CM_DCHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  // Box–Muller; discards the second variate for statelessness.
  double u1 = Uniform();
  while (u1 <= 0.0) u1 = Uniform();
  const double u2 = Uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  CM_DCHECK(!weights.empty());
  // Release builds compile the checks out; the contract below keeps the
  // result well-defined anyway: an empty weight vector draws index 0, and a
  // non-positive total falls through to the last bucket.
  if (weights.empty()) return 0;
  double total = 0.0;
  for (double w : weights) {
    CM_DCHECK_GE(w, 0.0);
    total += w;
  }
  CM_DCHECK_GT(total, 0.0);
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // Floating point edge: return the last bucket.
}

int Rng::GeometricCount(double p_continue, int cap) {
  int count = 0;
  while (count < cap && Bernoulli(p_continue)) ++count;
  return count;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = n; i > 1; --i) {
    const size_t j = UniformInt(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  CM_DCHECK_LE(k, n);
  // Partial Fisher–Yates over an index vector.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + UniformInt(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace crossmodal
