#include "util/parse_number.h"

#include <charconv>
#include <cmath>
#include <stdexcept>

namespace crossmodal {

Result<int64_t> ParseInt64(const std::string& text) {
  int64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("not an integer: '" + text + "'");
  }
  return v;
}

Result<uint64_t> ParseUint64(const std::string& text) {
  uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("not an unsigned integer: '" + text + "'");
  }
  return v;
}

Result<double> ParseDouble(const std::string& text) {
  // std::stod rather than from_chars: libstdc++ only grew FP from_chars
  // recently, and stod accepts the same literal set across platforms.
  try {
    size_t consumed = 0;
    const double v = std::stod(text, &consumed);
    if (consumed != text.size()) {
      return Status::InvalidArgument("trailing characters in number: '" +
                                     text + "'");
    }
    return v;
  } catch (const std::exception&) {
    return Status::InvalidArgument("not a number: '" + text + "'");
  }
}

Result<double> ParseFiniteDouble(const std::string& text) {
  CM_ASSIGN_OR_RETURN(double v, ParseDouble(text));
  if (!std::isfinite(v)) {
    return Status::InvalidArgument("non-finite number: '" + text + "'");
  }
  return v;
}

}  // namespace crossmodal
