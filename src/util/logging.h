// Minimal leveled logging and check macros.

#ifndef CROSSMODAL_UTIL_LOGGING_H_
#define CROSSMODAL_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace crossmodal {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are suppressed. Defaults to Info.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and flushes it (to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process on destruction (for CHECK failures).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace crossmodal

#define CM_LOG(level)                                              \
  ::crossmodal::internal::LogMessage(::crossmodal::LogLevel::k##level, \
                                     __FILE__, __LINE__)

/// Aborts with a message when `cond` is false. Active in all build modes:
/// these guard internal invariants whose violation means memory-unsafe
/// continuation, the RocksDB assert-in-release idiom for cheap checks.
#define CM_CHECK(cond)                                                   \
  if (!(cond))                                                           \
  ::crossmodal::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define CM_CHECK_OK(expr)                                   \
  do {                                                      \
    ::crossmodal::Status _cm_st = (expr);                   \
    CM_CHECK(_cm_st.ok()) << _cm_st.ToString();             \
  } while (false)

#endif  // CROSSMODAL_UTIL_LOGGING_H_
