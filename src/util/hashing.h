// FNV-1a content hashing for determinism auditing.
//
// The determinism harness (audit/determinism.h) compares pipeline-stage
// artifacts across two runs by 64-bit content hash. FNV-1a is used because
// it is trivially portable (no endianness or alignment assumptions in this
// byte-at-a-time form) and fully deterministic across platforms — unlike
// std::hash, whose values are implementation-defined. Not a cryptographic
// hash; collisions are astronomically unlikely for "did two runs of the
// same code produce the same bytes", which is the only question asked here.
//
// Doubles are canonicalized before hashing: -0.0 hashes like +0.0 and every
// NaN bit pattern hashes alike, so artifacts that compare equal as numbers
// hash equal as bytes.

#ifndef CROSSMODAL_UTIL_HASHING_H_
#define CROSSMODAL_UTIL_HASHING_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace crossmodal {

/// Incremental FNV-1a 64-bit hasher.
class Fnv1aHasher {
 public:
  static constexpr uint64_t kOffsetBasis = 14695981039346656037ULL;
  static constexpr uint64_t kPrime = 1099511628211ULL;

  /// Current digest (valid at any point; starts at the offset basis).
  uint64_t digest() const { return state_; }

  Fnv1aHasher& AddByte(uint8_t b) {
    state_ = (state_ ^ b) * kPrime;
    return *this;
  }

  Fnv1aHasher& AddBytes(const void* data, size_t n) {
    const auto* bytes = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < n; ++i) AddByte(bytes[i]);
    return *this;
  }

  /// Integers are hashed little-endian byte by byte, so the digest does not
  /// depend on host endianness.
  Fnv1aHasher& AddU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) AddByte(static_cast<uint8_t>(v >> (8 * i)));
    return *this;
  }

  Fnv1aHasher& AddU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) AddByte(static_cast<uint8_t>(v >> (8 * i)));
    return *this;
  }

  Fnv1aHasher& AddI64(int64_t v) { return AddU64(static_cast<uint64_t>(v)); }

  Fnv1aHasher& AddI32(int32_t v) { return AddU32(static_cast<uint32_t>(v)); }

  /// Canonicalized double: -0.0 → +0.0, all NaNs → one quiet-NaN pattern.
  Fnv1aHasher& AddDouble(double v) {
    if (std::isnan(v)) {
      return AddU64(0x7FF8000000000000ULL);
    }
    if (v == 0.0) v = 0.0;  // collapses -0.0
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return AddU64(bits);
  }

  /// Canonicalized float (same rules as AddDouble).
  Fnv1aHasher& AddFloat(float v) {
    if (std::isnan(v)) return AddU32(0x7FC00000U);
    if (v == 0.0f) v = 0.0f;
    uint32_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return AddU32(bits);
  }

  /// Length-prefixed string (prefix prevents concatenation ambiguity).
  Fnv1aHasher& AddString(const std::string& s) {
    AddU64(s.size());
    return AddBytes(s.data(), s.size());
  }

 private:
  uint64_t state_ = kOffsetBasis;
};

/// One-shot convenience: hash of a double sequence (canonicalized,
/// length-prefixed).
inline uint64_t HashDoubles(const std::vector<double>& values) {
  Fnv1aHasher hasher;
  hasher.AddU64(values.size());
  for (double v : values) hasher.AddDouble(v);
  return hasher.digest();
}

}  // namespace crossmodal

#endif  // CROSSMODAL_UTIL_HASHING_H_
