// Wall-clock stopwatch for benches and pipeline stage timing.

#ifndef CROSSMODAL_UTIL_TIMER_H_
#define CROSSMODAL_UTIL_TIMER_H_

#include <chrono>

namespace crossmodal {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_UTIL_TIMER_H_
