#include "util/lockdep.h"

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "util/check.h"

namespace crossmodal {
namespace lockdep {
namespace {

void DefaultViolationHandler(const char* held_name,
                             const char* acquired_name) {
  CM_DCHECK(false) << "lockdep: lock-order inversion — acquiring '"
                   << acquired_name << "' while holding '" << held_name
                   << "', but the opposite order '" << acquired_name
                   << "' -> '" << held_name
                   << "' was already observed; interleaved threads can "
                      "deadlock on this pair";
  // Unreachable when DCHECKs are armed; under NDEBUG the hooks that call
  // this handler are compiled out entirely.
}

std::atomic<ViolationHandler> g_handler{&DefaultViolationHandler};

// The registry below only exists in armed builds; g_handler stays defined in
// all builds so SetViolationHandler links everywhere.
#ifndef NDEBUG

struct Graph {
  // Class key: the name for named mutexes, "@<address>" for unnamed ones.
  std::map<std::string, int> class_ids;
  std::vector<std::string> class_names;  // display name per class id
  std::vector<std::set<int>> edges;      // edges[a] = classes acquired after a
};

std::mutex g_mu;  // raw std::mutex: invisible to the graph (no recursion)
Graph& GlobalGraph() {
  static Graph* graph = new Graph();  // leaked: outlives static destructors
  return *graph;
}

struct HeldLock {
  const void* lock;
  int cls;
};

std::vector<HeldLock>& HeldStack() {
  // Function-local thread_local: constructed on first use per thread and
  // destroyed at thread exit (no leak under ASan's leak checker).
  thread_local std::vector<HeldLock> held;
  return held;
}

// Class id for (lock, name) — under g_mu.
int ClassIdLocked(const void* lock, const char* name) {
  Graph& graph = GlobalGraph();
  std::string key;
  std::string display;
  if (name != nullptr && name[0] != '\0') {
    key = name;
    display = name;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "@%p", lock);
    key = buf;
    display = std::string("<unnamed mutex ") + buf + ">";
  }
  auto [it, inserted] = graph.class_ids.emplace(std::move(key),
                                                static_cast<int>(
                                                    graph.class_names.size()));
  if (inserted) {
    graph.class_names.push_back(std::move(display));
    graph.edges.emplace_back();
  }
  return it->second;
}

// True when `to` is reachable from `from` along recorded edges — under g_mu.
bool ReachableLocked(int from, int to) {
  const Graph& graph = GlobalGraph();
  std::vector<int> stack = {from};
  std::set<int> visited;
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    if (node == to) return true;
    if (!visited.insert(node).second) continue;
    for (int next : graph.edges[static_cast<size_t>(node)]) {
      stack.push_back(next);
    }
  }
  return false;
}

#endif  // !NDEBUG

}  // namespace

ViolationHandler SetViolationHandler(ViolationHandler handler) {
  // acq_rel: publish the new handler to reporting threads and observe any
  // state the previous handler's installer published before the swap.
  return g_handler.exchange(handler != nullptr ? handler
                                               : &DefaultViolationHandler,
                            std::memory_order_acq_rel);
}

#ifndef NDEBUG

void OnAcquire(const void* lock, const char* name) {
  std::vector<HeldLock>& held = HeldStack();
  // Violations found under g_mu are reported after releasing it: the handler
  // may log arbitrarily (or abort), and must not run inside our own lock.
  std::vector<std::pair<std::string, std::string>> violations;
  int cls;
  {
    std::lock_guard<std::mutex> guard(g_mu);
    Graph& graph = GlobalGraph();
    cls = ClassIdLocked(lock, name);
    const std::string& cls_name = graph.class_names[static_cast<size_t>(cls)];
    for (const HeldLock& h : held) {
      if (h.lock == lock) {
        // Same instance re-locked by its own holder: certain deadlock.
        violations.emplace_back(cls_name, cls_name);
        continue;
      }
      if (h.cls == cls) continue;  // sibling instance of one class
      std::set<int>& out_edges = graph.edges[static_cast<size_t>(h.cls)];
      if (out_edges.count(cls) > 0) continue;  // edge already known, acyclic
      if (ReachableLocked(cls, h.cls)) {
        // Adding held→cls would close a cycle: inversion. The edge is NOT
        // added, keeping the graph acyclic so one bug reports once per
        // offending acquisition instead of poisoning later checks.
        violations.emplace_back(graph.class_names[static_cast<size_t>(h.cls)],
                                cls_name);
      } else {
        out_edges.insert(cls);
      }
    }
  }
  held.push_back(HeldLock{lock, cls});
  if (!violations.empty()) {
    const ViolationHandler handler = g_handler.load();
    for (const auto& [held_name, acquired_name] : violations) {
      handler(held_name.c_str(), acquired_name.c_str());
    }
  }
}

void OnTryAcquire(const void* lock, const char* name) {
  int cls;
  {
    std::lock_guard<std::mutex> guard(g_mu);
    cls = ClassIdLocked(lock, name);
  }
  HeldStack().push_back(HeldLock{lock, cls});
}

void OnRelease(const void* lock) {
  std::vector<HeldLock>& held = HeldStack();
  for (size_t i = held.size(); i-- > 0;) {
    if (held[i].lock == lock) {
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
  // Unlock of a lock we never saw acquired: tolerated (a Mutex may be locked
  // before a handler/test reset); nothing to pop.
}

void ResetGraphForTest() {
  {
    std::lock_guard<std::mutex> guard(g_mu);
    Graph& graph = GlobalGraph();
    graph.class_ids.clear();
    graph.class_names.clear();
    graph.edges.clear();
  }
  HeldStack().clear();  // calling thread only; tests reset between cases
}

size_t NumEdgesForTest() {
  std::lock_guard<std::mutex> guard(g_mu);
  size_t total = 0;
  for (const auto& out_edges : GlobalGraph().edges) total += out_edges.size();
  return total;
}

#else  // NDEBUG

void ResetGraphForTest() {}
size_t NumEdgesForTest() { return 0; }

#endif  // NDEBUG

}  // namespace lockdep
}  // namespace crossmodal
