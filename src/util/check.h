// Debug-build invariant checks (CM_DCHECK*) for bounds-sensitive hot paths.
//
// CM_CHECK (util/logging.h) stays on in every build mode and belongs on
// cheap, memory-safety-critical guards. CM_DCHECK compiles to nothing under
// NDEBUG (the Release preset), so it can sit inside per-element inner loops
// — label-matrix vote access, sparse dot products, adjacency construction —
// where an always-on branch would be measurable. The sanitizer presets build
// without NDEBUG, so ASan/UBSan/TSan runs exercise every DCHECK.

#ifndef CROSSMODAL_UTIL_CHECK_H_
#define CROSSMODAL_UTIL_CHECK_H_

#include "util/logging.h"

/// Aborts with a message when `cond` is false, debug builds only. Streams
/// like CM_CHECK: CM_DCHECK(i < n) << "scanning " << name;
/// Operands must be side-effect free: under NDEBUG nothing is evaluated.
#ifndef NDEBUG
#define CM_DCHECK(cond) CM_CHECK(cond)
#else
#define CM_DCHECK(cond) \
  while (false) CM_CHECK(cond)
#endif

/// Binary comparison forms; both operands appear in the failure message.
#define CM_DCHECK_OP(op, a, b) \
  CM_DCHECK((a)op(b)) << " (" << (a) << " vs " << (b) << ")"

#define CM_DCHECK_EQ(a, b) CM_DCHECK_OP(==, a, b)
#define CM_DCHECK_NE(a, b) CM_DCHECK_OP(!=, a, b)
#define CM_DCHECK_LT(a, b) CM_DCHECK_OP(<, a, b)
#define CM_DCHECK_LE(a, b) CM_DCHECK_OP(<=, a, b)
#define CM_DCHECK_GT(a, b) CM_DCHECK_OP(>, a, b)
#define CM_DCHECK_GE(a, b) CM_DCHECK_OP(>=, a, b)

#endif  // CROSSMODAL_UTIL_CHECK_H_
