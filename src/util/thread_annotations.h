// Clang thread-safety-analysis macros (no-ops on other compilers).
//
// Annotate shared state with CM_GUARDED_BY(mu) and lock-taking APIs with
// CM_ACQUIRE/CM_RELEASE so `-Wthread-safety` turns missed-lock bugs into
// compile errors. The macros follow the Abseil/RocksDB naming scheme; see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for semantics.
// Pair them with crossmodal::Mutex (util/mutex.h), whose type carries the
// capability attribute the analysis needs (std::mutex in libstdc++ does not).

#ifndef CROSSMODAL_UTIL_THREAD_ANNOTATIONS_H_
#define CROSSMODAL_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define CM_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define CM_THREAD_ANNOTATION_IMPL(x)  // no-op
#endif

/// Marks a type as a lockable capability ("mutex").
#define CM_CAPABILITY(x) CM_THREAD_ANNOTATION_IMPL(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define CM_SCOPED_CAPABILITY CM_THREAD_ANNOTATION_IMPL(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define CM_GUARDED_BY(x) CM_THREAD_ANNOTATION_IMPL(guarded_by(x))

/// Declares that the pointed-to data is protected by the given capability.
#define CM_PT_GUARDED_BY(x) CM_THREAD_ANNOTATION_IMPL(pt_guarded_by(x))

/// Declares that a function acquires the capability and holds it on return.
#define CM_ACQUIRE(...) \
  CM_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))

/// Declares that a function releases the capability.
#define CM_RELEASE(...) \
  CM_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))

/// Declares that a function attempts to acquire the capability, returning
/// `result` on success.
#define CM_TRY_ACQUIRE(result, ...) \
  CM_THREAD_ANNOTATION_IMPL(try_acquire_capability(result, __VA_ARGS__))

/// Declares that the caller must hold the capability exclusively.
#define CM_EXCLUSIVE_LOCKS_REQUIRED(...) \
  CM_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))

/// Short-form alias of CM_EXCLUSIVE_LOCKS_REQUIRED (Abseil's modern
/// spelling); cmrace's guard-coverage rule accepts either on a method that
/// writes CM_GUARDED_BY state without taking the lock itself.
#define CM_REQUIRES(...) \
  CM_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))

/// Declares that the caller must NOT hold the capability (deadlock guard).
#define CM_LOCKS_EXCLUDED(...) \
  CM_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))

/// Declares that a function returns a reference to the capability.
#define CM_RETURN_CAPABILITY(x) CM_THREAD_ANNOTATION_IMPL(lock_returned(x))

/// Opts a function out of the analysis (e.g. init/teardown paths).
#define CM_NO_THREAD_SAFETY_ANALYSIS \
  CM_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)

#endif  // CROSSMODAL_UTIL_THREAD_ANNOTATIONS_H_
