// Mutex and scoped-lock wrappers carrying thread-safety capability
// attributes, so clang's -Wthread-safety can verify locking discipline.
//
// libstdc++'s std::mutex is not annotated as a capability, which makes
// CM_GUARDED_BY(std_mutex_member) unenforceable. crossmodal::Mutex is a
// zero-cost annotated wrapper; MutexLock is the scoped guard. Both satisfy
// the standard Lockable requirements, so std::condition_variable_any can
// wait directly on a MutexLock.

#ifndef CROSSMODAL_UTIL_MUTEX_H_
#define CROSSMODAL_UTIL_MUTEX_H_

#include <mutex>

#include "util/thread_annotations.h"

namespace crossmodal {

/// An annotated mutual-exclusion capability over std::mutex.
class CM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CM_ACQUIRE() { mu_.lock(); }
  void unlock() CM_RELEASE() { mu_.unlock(); }
  bool try_lock() CM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII guard holding a Mutex for its scope. Also models Lockable (lock /
/// unlock forward to the underlying Mutex) so condition variables can
/// atomically release and reacquire it while waiting.
class CM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) CM_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() CM_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Lockable interface for std::condition_variable_any::wait. The wait call
  // releases and reacquires atomically, so the capability is held both when
  // wait is entered and when it returns.
  void lock() CM_ACQUIRE() { mu_->lock(); }
  void unlock() CM_RELEASE() { mu_->unlock(); }

 private:
  Mutex* mu_;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_UTIL_MUTEX_H_
