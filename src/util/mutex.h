// Mutex and scoped-lock wrappers carrying thread-safety capability
// attributes, so clang's -Wthread-safety can verify locking discipline.
//
// libstdc++'s std::mutex is not annotated as a capability, which makes
// CM_GUARDED_BY(std_mutex_member) unenforceable. crossmodal::Mutex is a
// zero-cost annotated wrapper; MutexLock is the scoped guard. Both satisfy
// the standard Lockable requirements, so std::condition_variable_any can
// wait directly on a MutexLock.
//
// In builds without NDEBUG every acquisition also feeds the mini-lockdep
// lock-order graph (util/lockdep.h): nesting two named mutexes in both
// orders anywhere in the process fires a fatal inversion report, catching
// deadlock *potential* without needing the unlucky interleaving. Release
// builds compile the hooks to nothing. Prefer the named constructor for any
// mutex that can nest with another — the name is the lockdep lock class and
// appears in inversion reports.

#ifndef CROSSMODAL_UTIL_MUTEX_H_
#define CROSSMODAL_UTIL_MUTEX_H_

#include <mutex>

#include "util/lockdep.h"
#include "util/thread_annotations.h"

namespace crossmodal {

/// An annotated mutual-exclusion capability over std::mutex.
class CM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// Named mutex: `name` must have static storage duration (a string
  /// literal). Mutexes sharing a name share a lockdep lock class.
  explicit Mutex(const char* name) : name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CM_ACQUIRE() {
    // Checked before blocking so an actual A/B deadlock is reported instead
    // of hanging both threads.
    lockdep::OnAcquire(this, name_);
    mu_.lock();
  }
  void unlock() CM_RELEASE() {
    lockdep::OnRelease(this);
    mu_.unlock();
  }
  bool try_lock() CM_TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
    if (acquired) lockdep::OnTryAcquire(this, name_);
    return acquired;
  }

  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const char* name_ = nullptr;  // nullptr = per-instance lockdep class
};

/// RAII guard holding a Mutex for its scope. Also models Lockable (lock /
/// unlock forward to the underlying Mutex) so condition variables can
/// atomically release and reacquire it while waiting.
class CM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) CM_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() CM_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Lockable interface for std::condition_variable_any::wait. The wait call
  // releases and reacquires atomically, so the capability is held both when
  // wait is entered and when it returns.
  void lock() CM_ACQUIRE() { mu_->lock(); }
  void unlock() CM_RELEASE() { mu_->unlock(); }

 private:
  Mutex* mu_;
};

}  // namespace crossmodal

#endif  // CROSSMODAL_UTIL_MUTEX_H_
