// Deterministic random number generation.
//
// All stochastic components of the library draw from Rng, a counter-free
// splitmix64/xoshiro-based generator with explicit 64-bit seeding, so every
// corpus, model fit, and benchmark is bit-reproducible across runs and
// platforms. Stable per-key derivation (DeriveSeed) lets services behave as
// pure functions of (seed, entity) regardless of evaluation order.

#ifndef CROSSMODAL_UTIL_RANDOM_H_
#define CROSSMODAL_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace crossmodal {

/// Mixes a 64-bit value through the splitmix64 finalizer; used for seeding
/// and stable hashing.
uint64_t SplitMix64(uint64_t x);

/// Derives a child seed from a parent seed and a stream key, such that
/// distinct keys give statistically independent streams.
uint64_t DeriveSeed(uint64_t seed, uint64_t key);

/// Derives a seed from a seed and a string key (e.g. a service name).
uint64_t DeriveSeed(uint64_t seed, const char* key);

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// Satisfies the UniformRandomBitGenerator concept, so it can also be used
/// with <random> distributions when convenient, but the member helpers below
/// are platform-stable (libstdc++ distributions are not guaranteed to be).
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator; equal seeds give equal streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit draw.
  uint64_t operator()();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal draw (Box–Muller; stateless variant, two uniforms).
  double Normal();

  /// Normal draw with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Draws an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Weights must be non-negative with positive sum
  /// (CM_DCHECK-enforced in debug/sanitizer builds). Release builds keep
  /// the result defined: empty weights draw 0; a non-positive sum draws the
  /// last bucket.
  size_t Categorical(const std::vector<double>& weights);

  /// Geometric-ish heavy-tailed count: number of successes before failure,
  /// capped at `cap`.
  int GeometricCount(double p_continue, int cap);

  /// Fisher–Yates shuffle of [0, n) index vector.
  std::vector<size_t> Permutation(size_t n);

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
};

}  // namespace crossmodal

#endif  // CROSSMODAL_UTIL_RANDOM_H_
