// Quickstart: adapt a text classifier to images in ~60 lines.
//
// Generates a synthetic task corpus (standing in for an organization's
// labeled text + unlabeled image traffic), builds the organizational
// resource registry, runs the cross-modal pipeline (feature generation ->
// weak supervision -> multi-modal training), and evaluates against the
// fully supervised baseline the paper reports relative numbers against.

#include <cstdio>

#include "core/baselines.h"
#include "core/evaluation.h"
#include "core/pipeline.h"
#include "synth/corpus_generator.h"
#include "util/logging.h"

using namespace crossmodal;

int main() {
  // ---- The world: one of the paper's five tasks, scaled down further so
  // the quickstart finishes in a few seconds.
  const WorldConfig world;
  const TaskSpec task = TaskSpec::CT(1).Scaled(0.35);
  CorpusGenerator generator(world, task);
  const Corpus corpus = generator.Generate();
  std::printf("corpus: %zu labeled text, %zu unlabeled image, %zu test\n",
              corpus.text_labeled.size(), corpus.image_unlabeled.size(),
              corpus.image_test.size());

  // ---- Organizational resources: 15 services + image embeddings.
  auto registry = BuildModerationRegistry(generator, /*seed=*/42);
  CM_CHECK(registry.ok()) << registry.status();

  // ---- The cross-modal pipeline (defaults: all feature sets, itemset
  // mining + label propagation, early fusion, MLP end model).
  PipelineConfig config;
  CrossModalPipeline pipeline(&registry.value(), &corpus, config);
  auto result = pipeline.Run();
  CM_CHECK(result.ok()) << result.status();

  const auto& r = *result;
  std::printf("curation: %zu LFs (mining %.2fs), coverage %.2f, "
              "label prop: %s\n",
              r.curation.lfs.size(),
              r.curation.mining_report.elapsed_seconds,
              r.curation.lf_total_coverage,
              r.curation.used_label_propagation ? "yes" : "no");
  std::printf("training: %zu text + %zu weakly labeled image points\n",
              r.report.n_text_train, r.report.n_ws_train);

  // ---- Evaluate on the held-out labeled image test set.
  const EvalResult cross_modal =
      EvaluateModel(*r.model, corpus.image_test, pipeline.store());

  // Baseline: fully supervised image model on pre-trained embeddings only
  // (the reference all the paper's relative AUPRCs are against).
  auto embedding_only = registry->schema().Select({ServiceSet::kImage},
                                                  /*servable_only=*/true);
  auto baseline = TrainFullySupervisedImage(corpus, pipeline.store(),
                                            embedding_only, /*budget=*/0,
                                            config.model);
  CM_CHECK(baseline.ok()) << baseline.status();
  const EvalResult base =
      EvaluateModel(**baseline, corpus.image_test, pipeline.store());

  std::printf("\nAUPRC  cross-modal: %.3f   embedding baseline: %.3f   "
              "relative: %.2fx\n",
              cross_modal.auprc, base.auprc,
              base.auprc > 0 ? cross_modal.auprc / base.auprc : 0.0);
  std::printf("timing feature-gen %.2fs, curation %.2fs, training %.2fs\n",
              r.report.feature_gen_seconds, r.report.curation_seconds,
              r.report.training_seconds);
  return 0;
}
