// Multi-class weak supervision (§4.1): the same machinery that labels
// binary policy tasks extends to K-way classification. Here the team needs
// a coarse content-category classifier (8 classes) for the new image
// modality with no labels: multi-class LFs over the common feature space
// vote a class, the multi-class generative model combines them, and a
// softmax model trains on the soft labels.

#include <cstdio>

#include "dataflow/feature_generation.h"
#include "labeling/multiclass.h"
#include "ml/encoder.h"
#include "ml/softmax_regression.h"
#include "resources/registry.h"
#include "synth/corpus_generator.h"
#include "util/logging.h"

using namespace crossmodal;

int main() {
  const WorldConfig world;
  const TaskSpec task = TaskSpec::CT(1).Scaled(0.3);
  CorpusGenerator generator(world, task);
  const Corpus corpus = generator.Generate();
  auto registry = BuildModerationRegistry(generator, /*seed=*/17);
  CM_CHECK(registry.ok()) << registry.status();
  const FeatureSchema& schema = registry->schema();

  FeatureStore store(&schema);
  GenerateFeatures(corpus.image_unlabeled, *registry, &store);
  GenerateFeatures(corpus.image_test, *registry, &store);

  // The target: the coarse content category (topic / 4), an 8-way task.
  const int32_t num_classes = (world.num_topics + 3) / 4;
  auto truth_of = [](const Entity& e) { return e.latent.topic / 4; };

  // ---- Multi-class LFs from three different services. ------------------
  auto id = [&](const char* name) {
    auto f = schema.Find(name);
    CM_CHECK(f.ok()) << f.status();
    return *f;
  };
  std::vector<MulticlassLF> lfs;
  {
    // The coarse categorizer votes its own output class.
    std::vector<int32_t> identity(static_cast<size_t>(num_classes));
    for (int32_t c = 0; c < num_classes; ++c) {
      identity[static_cast<size_t>(c)] = c;
    }
    lfs.push_back(MulticlassLF::FromCategoryMap(
        "content_category", id("content_category"), identity));
  }
  {
    // The fine topic model votes topic/4.
    std::vector<int32_t> coarse(static_cast<size_t>(world.num_topics));
    for (int32_t t = 0; t < world.num_topics; ++t) {
      coarse[static_cast<size_t>(t)] = t / 4;
    }
    lfs.push_back(MulticlassLF::FromCategoryMap(
        "topic_primary", id("topic_primary"), coarse));
    // Secondary topics are the fine topic's ring neighbors; the same map
    // is a weaker voter.
    lfs.push_back(MulticlassLF::FromCategoryMap(
        "topic_secondary", id("topic_secondary"), coarse));
  }

  std::vector<EntityId> unlabeled_ids;
  for (const Entity& e : corpus.image_unlabeled) {
    unlabeled_ids.push_back(e.id);
  }
  const auto matrix =
      ApplyMulticlassLFs(lfs, unlabeled_ids, store, num_classes);
  auto label_model = MulticlassLabelModel::Fit(matrix);
  CM_CHECK(label_model.ok()) << label_model.status();
  const auto weak_labels = label_model->Predict(matrix);

  // Weak-label accuracy vs hidden truth.
  {
    std::vector<int32_t> predicted, truth;
    for (size_t i = 0; i < weak_labels.size(); ++i) {
      if (!weak_labels[i].covered) continue;
      predicted.push_back(weak_labels[i].Top());
      truth.push_back(truth_of(corpus.image_unlabeled[i]));
    }
    std::printf("weak labels: %zu/%zu covered, accuracy %.3f (chance %.3f)\n",
                predicted.size(), weak_labels.size(),
                MulticlassAccuracy(predicted, truth), 1.0 / num_classes);
  }

  // ---- Train a softmax end model on the soft labels. --------------------
  EncoderOptions enc_options;
  // Everything except the services the LFs already used — the end model
  // must generalize, not parrot its own labelers.
  for (const FeatureDef& def : schema.defs()) {
    if (def.name == "content_category" || def.name == "topic_primary" ||
        def.name == "topic_secondary") {
      continue;
    }
    auto f = schema.Find(def.name);
    enc_options.features.push_back(*f);
  }
  std::vector<const FeatureVector*> fit_rows;
  for (EntityId eid : unlabeled_ids) fit_rows.push_back(*store.Get(eid));
  auto encoder = FeatureEncoder::Fit(schema, fit_rows, enc_options);
  CM_CHECK(encoder.ok()) << encoder.status();

  MulticlassDataset train;
  train.dim = encoder->dim();
  train.num_classes = num_classes;
  for (size_t i = 0; i < weak_labels.size(); ++i) {
    if (!weak_labels[i].covered) continue;
    MulticlassExample ex;
    ex.x = encoder->Encode(*fit_rows[i]);
    ex.target.assign(weak_labels[i].p.begin(), weak_labels[i].p.end());
    train.examples.push_back(std::move(ex));
  }
  TrainOptions train_options;
  train_options.epochs = 12;
  auto model = SoftmaxRegression::Train(train, train_options);
  CM_CHECK(model.ok()) << model.status();

  // ---- Evaluate on held-out labeled images. ------------------------------
  std::vector<int32_t> predicted, truth;
  for (const Entity& e : corpus.image_test) {
    predicted.push_back(model->PredictClass(encoder->Encode(**store.Get(e.id))));
    truth.push_back(truth_of(e));
  }
  const double accuracy = MulticlassAccuracy(predicted, truth);
  std::printf("softmax end model on %zu test images: accuracy %.3f, "
              "macro-F1 %.3f (chance %.3f)\n",
              truth.size(), accuracy, MacroF1(predicted, truth, num_classes),
              1.0 / num_classes);
  CM_CHECK(accuracy > 2.0 / num_classes) << "must beat chance decisively";
  std::printf("\nNo image was ever labeled: the %d-way classifier came\n"
              "entirely from organizational resources + the multi-class\n"
              "generative model.\n", num_classes);
  return 0;
}
