// Video adaptation: extending the image-era pipeline to a third modality.
//
// The paper's frame-splitting story (§3.1.1): when video posts launch, the
// team splits each video into representative frames, runs the image-era
// organizational services on the frames, and pools the outputs back into
// the common feature space — so the cross-modal model trained for images
// scores videos without retraining.

#include <cstdio>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "resources/frame_splitter.h"
#include "synth/corpus_generator.h"
#include "util/logging.h"

using namespace crossmodal;

int main() {
  const WorldConfig world;
  const TaskSpec task = TaskSpec::CT(2).Scaled(0.3);
  CorpusGenerator generator(world, task);
  const Corpus corpus = generator.Generate();
  auto registry = BuildModerationRegistry(generator, /*seed=*/7);
  CM_CHECK(registry.ok()) << registry.status();

  // ---- Train the text -> image cross-modal model as usual. -------------
  PipelineConfig config;
  config.model.ensemble_size = 3;
  config.curation.label_model.fixed_class_balance = task.pos_rate;
  CrossModalPipeline pipeline(&registry.value(), &corpus, config);
  auto result = pipeline.Run();
  CM_CHECK(result.ok()) << result.status();
  const EvalResult image_eval =
      EvaluateModel(*result->model, corpus.image_test, pipeline.store());
  std::printf("image test AUPRC: %.3f (positive rate %.1f%%)\n",
              image_eval.auprc, 100.0 * task.pos_rate);

  // ---- Video launches: generate video traffic. --------------------------
  const size_t n_videos = 1500;
  const size_t n_pos = static_cast<size_t>(n_videos * task.pos_rate);
  Rng rng(DeriveSeed(task.seed, "videos"));
  std::vector<Entity> videos;
  videos.reserve(n_videos);
  for (size_t i = 0; i < n_videos; ++i) {
    const int frames = 4 + static_cast<int>(rng.UniformInt(uint64_t{8}));
    videos.push_back(generator.MakeVideoEntity(
        i < n_pos, /*id=*/5'000'000 + i, /*timestamp=*/2000, frames, &rng));
  }

  // ---- Featurize each video: split -> per-frame services -> pool. ------
  VideoFrameSplitter splitter(/*max_frames=*/6);
  std::vector<double> scores;
  std::vector<Entity> scored_videos;
  size_t total_frames = 0;
  for (const Entity& video : videos) {
    auto frames = splitter.Split(video);
    CM_CHECK(frames.ok()) << frames.status();
    std::vector<FeatureVector> frame_rows;
    frame_rows.reserve(frames->size());
    for (const Entity& frame : *frames) {
      frame_rows.push_back(registry->GenerateFeatures(frame));
    }
    total_frames += frame_rows.size();
    const FeatureVector video_row =
        AggregateFrameRows(frame_rows, registry->schema());
    scores.push_back(result->model->Score(video_row));
    scored_videos.push_back(video);
  }
  std::printf("scored %zu videos via %zu extracted frames\n", videos.size(),
              total_frames);

  // ---- How well does the image-era model transfer to video? ------------
  const EvalResult video_eval = EvaluateScores(scores, scored_videos);
  std::printf("video AUPRC: %.3f (chance level = positive rate %.3f)\n",
              video_eval.auprc, task.pos_rate);
  std::printf("video ROC-AUC: %.3f\n", video_eval.roc_auc);
  CM_CHECK(video_eval.auprc > 2.0 * task.pos_rate)
      << "video transfer should beat chance decisively";
  std::printf("\nThe image-era cross-modal model extends to the brand-new "
              "video modality\nthrough frame splitting alone — no video "
              "labels, no retraining.\n");
  return 0;
}
