// Content moderation walk-through: the paper's motivating scenario, one
// pipeline step at a time.
//
// A moderation team has a mature text classifier (18k labeled posts here)
// and must extend the same policy task to freshly launched image posts with
// no labels. This example narrates each step of the augmented split
// architecture: (A) building the common feature space from organizational
// resources, (B) curating weakly supervised training data (mined LFs +
// label propagation + the generative label model), and (C) multi-modal
// training — then compares the result against the fully supervised baseline
// and reports where the hand-labeling cross-over lies.

#include <cstdio>

#include "core/baselines.h"
#include "core/evaluation.h"
#include "core/pipeline.h"
#include "labeling/lf_quality.h"
#include "synth/corpus_generator.h"
#include "util/logging.h"
#include "util/table_printer.h"

using namespace crossmodal;

int main() {
  // ------------------------------------------------------------------
  // Setup: the task, the corpora, and the organization's resources.
  // ------------------------------------------------------------------
  const WorldConfig world;
  const TaskSpec task = TaskSpec::CT(1).Scaled(0.5);
  CorpusGenerator generator(world, task);
  const Corpus corpus = generator.Generate();
  auto registry = BuildModerationRegistry(generator, /*seed=*/2024);
  CM_CHECK(registry.ok()) << registry.status();

  std::printf("Task: %s (positive rate %.1f%%)\n", task.name.c_str(),
              100.0 * task.pos_rate);
  std::printf("Old modality:   %zu labeled text posts\n",
              corpus.text_labeled.size());
  std::printf("New modality:   %zu unlabeled image posts (live traffic)\n",
              corpus.image_unlabeled.size());
  std::printf("Resources:      %zu organizational services\n\n",
              registry->size());

  // List the resource library (step A's raw material).
  TablePrinter services({"Service", "Kind", "Set", "Type", "Servable"});
  for (size_t i = 0; i < registry->size(); ++i) {
    const FeatureService& svc = registry->service(static_cast<FeatureId>(i));
    const FeatureDef& def = svc.output_def();
    services.AddRow({def.name, ResourceKindName(svc.kind()),
                     ServiceSetName(def.set), FeatureTypeName(def.type),
                     def.servable ? "yes" : "NO (offline only)"});
  }
  services.Print(std::cout);

  // ------------------------------------------------------------------
  // Step A+B: feature generation and training-data curation.
  // ------------------------------------------------------------------
  PipelineConfig config;
  config.model.train.epochs = 10;
  config.model.ensemble_size = 3;
  config.curation.label_model.fixed_class_balance = task.pos_rate;
  config.curation.prop_target_precision_pos = 0.5;
  CrossModalPipeline pipeline(&registry.value(), &corpus, config);
  auto curation = pipeline.CurateTrainingData();
  CM_CHECK(curation.ok()) << curation.status();

  std::printf("\n-- Step B: curation --\n");
  std::printf("mined LFs: %zu positive, %zu negative (%.2fs of mining; the\n"
              "paper's expert needed 7 hours spread over two weeks)\n",
              curation->mining_report.accepted_positive,
              curation->mining_report.accepted_negative,
              curation->mining_report.elapsed_seconds);
  std::printf("label propagation: graph avg degree %.1f, converged in %d "
              "iterations\n",
              curation->graph_avg_degree, curation->propagation_iterations);
  std::printf("LF coverage of unlabeled images: %.1f%%\n",
              100.0 * curation->lf_total_coverage);

  // Show the top mined LFs as a domain expert would review them (§7.2:
  // mined results as a starting point for expert exploration).
  std::vector<EntityId> dev_ids;
  std::vector<int> dev_truth;
  for (size_t i = 0; i < 2000 && i < corpus.text_labeled.size(); ++i) {
    dev_ids.push_back(corpus.text_labeled[i].id);
    dev_truth.push_back(corpus.text_labeled[i].label == 1 ? 1 : 0);
  }
  const LabelMatrix dev_matrix =
      ApplyLabelingFunctions(curation->lfs, dev_ids, pipeline.store());
  const auto lf_quality = EvaluateLFs(dev_matrix, dev_truth);
  TablePrinter lf_table({"Labeling function", "Polarity", "Coverage",
                         "Precision", "Recall"});
  size_t shown = 0;
  for (const auto& q : lf_quality) {
    if (q.polarity != 1 || shown >= 6) continue;
    ++shown;
    lf_table.AddRow({q.name, "+", TablePrinter::Num(q.coverage, 3),
                     TablePrinter::Num(q.precision, 2),
                     TablePrinter::Num(q.recall, 3)});
  }
  std::printf("\ntop positive LFs on the text dev set:\n");
  lf_table.Print(std::cout);

  // ------------------------------------------------------------------
  // Step C: multi-modal training + evaluation.
  // ------------------------------------------------------------------
  auto result = pipeline.Run();
  CM_CHECK(result.ok()) << result.status();
  const EvalResult cm =
      EvaluateModel(*result->model, corpus.image_test, pipeline.store());

  // Baseline: what the team would get from hand-labeling instead.
  const auto& sel = pipeline.selection();
  TablePrinter outcome({"Model", "AUPRC", "ROC-AUC"});
  outcome.AddRow({"cross-modal pipeline (no image labels)",
                  TablePrinter::Num(cm.auprc, 3),
                  TablePrinter::Num(cm.roc_auc, 3)});
  size_t crossover = 0;
  for (size_t budget : {100u, 250u, 500u, 1000u, 2000u}) {
    if (budget > corpus.image_labeled_pool.size()) break;
    auto supervised = TrainFullySupervisedImage(
        corpus, pipeline.store(), sel.image_model_features, budget,
        config.model);
    CM_CHECK(supervised.ok()) << supervised.status();
    const EvalResult ev =
        EvaluateModel(**supervised, corpus.image_test, pipeline.store());
    outcome.AddRow({"fully supervised, " + std::to_string(budget) +
                        " hand labels",
                    TablePrinter::Num(ev.auprc, 3),
                    TablePrinter::Num(ev.roc_auc, 3)});
    if (crossover == 0 && ev.auprc >= cm.auprc) crossover = budget;
  }
  std::printf("\n-- Step C: results on %zu held-out labeled images --\n",
              corpus.image_test.size());
  outcome.Print(std::cout);
  if (crossover > 0) {
    std::printf("\nThe pipeline ships on day one; hand-labeling only wins "
                "after ~%zu reviewed images.\n", crossover);
  } else {
    std::printf("\nThe pipeline beats every supervised budget in the pool.\n");
  }
  return 0;
}
