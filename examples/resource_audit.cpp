// Resource audit: evaluating candidate organizational resources before
// wiring them into a pipeline (§7.1: low-quality resources incorrectly
// handled may hurt model performance — quality must be validated in
// advance).
//
// For each registered service this example measures, per modality:
//   * coverage  — how often the service returns a value at all;
//   * lift      — how much more often its "risky-looking" outputs appear on
//                 positives than negatives (a cheap proxy for usefulness,
//                 computed on the labeled old modality the way a team would
//                 vet a feature before deployment).

#include <cstdio>

#include "dataflow/feature_generation.h"
#include "mining/itemset_miner.h"
#include "resources/registry.h"
#include "synth/corpus_generator.h"
#include "util/logging.h"
#include "util/table_printer.h"

using namespace crossmodal;

int main() {
  const WorldConfig world;
  const TaskSpec task = TaskSpec::CT(1).Scaled(0.4);
  CorpusGenerator generator(world, task);
  const Corpus corpus = generator.Generate();
  auto registry = BuildModerationRegistry(generator, /*seed=*/99);
  CM_CHECK(registry.ok()) << registry.status();

  FeatureStore store(&registry->schema());
  GenerateFeatures(corpus.text_labeled, *registry, &store);
  GenerateFeatures(corpus.image_unlabeled, *registry, &store);

  auto coverage = [&](const std::vector<Entity>& split, FeatureId f) {
    size_t present = 0, total = 0;
    for (const Entity& e : split) {
      auto row = store.Get(e.id);
      if (!row.ok()) continue;
      ++total;
      present += !(*row)->Get(f).is_missing();
    }
    return total == 0 ? 0.0
                      : static_cast<double>(present) /
                            static_cast<double>(total);
  };

  // Per-feature usefulness proxy: the best mined order-1 item's F1 on the
  // labeled text corpus (exactly how the LF miner would rank this feature).
  std::vector<const FeatureVector*> rows;
  std::vector<int> labels;
  for (const Entity& e : corpus.text_labeled) {
    auto row = store.Get(e.id);
    if (!row.ok()) continue;
    rows.push_back(*row);
    labels.push_back(e.label == 1 ? 1 : 0);
  }
  auto best_f1 = [&](FeatureId f) {
    MiningOptions options;
    options.allowed_features = {f};
    options.min_precision_pos = 0.0;
    options.min_recall_pos = 0.01;
    options.max_lfs_per_polarity = 1;
    ItemsetMiner miner(&registry->schema(), options);
    auto result = miner.MineLFs(rows, labels);
    if (!result.ok()) return 0.0;
    double best = 0.0;
    for (const auto& item : result->itemsets) {
      if (item.polarity == Vote::kPositive) best = std::max(best, item.f1);
    }
    return best;
  };

  TablePrinter table({"Service", "Kind", "Cov(text)", "Cov(image)",
                      "Best item F1", "Verdict"});
  for (size_t i = 0; i < registry->size(); ++i) {
    const FeatureId f = static_cast<FeatureId>(i);
    const FeatureService& svc = registry->service(f);
    const double cov_text = coverage(corpus.text_labeled, f);
    const double cov_image = coverage(corpus.image_unlabeled, f);
    const double f1 = svc.output_def().type == FeatureType::kEmbedding
                          ? 0.0
                          : best_f1(f);
    const char* verdict =
        svc.output_def().type == FeatureType::kEmbedding
            ? "similarity only (graph/model input)"
        : f1 > 0.10 ? "strong LF candidate"
        : f1 > 0.03 ? "weak signal"
                    : "context only";
    table.AddRow({svc.name(), ResourceKindName(svc.kind()),
                  TablePrinter::Num(cov_text, 2),
                  TablePrinter::Num(cov_image, 2), TablePrinter::Num(f1, 3),
                  verdict});
  }
  table.Print(std::cout);
  std::printf(
      "\nTeams use exactly this kind of audit to decide which resources to\n"
      "wire into a new task's pipeline (and which nonservable ones to keep\n"
      "for weak supervision only).\n");
  return 0;
}
